"""Stage timing and incremental-analysis metrics.

The paper breaks total analysis time into five stages: CFG Build,
Initialization (DEF/UBD generation), PSG Build, Phase 1 and Phase 2.
:class:`StageTimer` measures them with a monotonic clock and
:class:`StageTimings` carries the results.

:class:`IncrementalMetrics` instruments the incremental re-analysis
engine (:mod:`repro.interproc.incremental`): routines re-solved versus
reused per phase, SCCs solved, worklist iterations, and per-stage wall
time — the numbers ``spike-analyze analyze --incremental --stats``
prints and the warm/cold benchmarks report.

:class:`ParallelMetrics` instruments the sharded parallel solver
(:mod:`repro.interproc.parallel`): per-shard stage timings as measured
inside the worker processes, wall-clock time per scheduling wave, and
the pool-utilization summary (busy seconds / (wall seconds x jobs))
that says how close the run came to linear scaling.
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Dict, Iterator, List

from repro.obs.tracer import span as _obs_span

#: Stage names, in pipeline order (the Figure-13 legend).
STAGE_NAMES = ("cfg_build", "initialization", "psg_build", "phase1", "phase2")


@dataclass
class StageTimings:
    """Seconds spent in each stage of one analysis run."""

    cfg_build: float = 0.0
    initialization: float = 0.0
    psg_build: float = 0.0
    phase1: float = 0.0
    phase2: float = 0.0

    @property
    def total(self) -> float:
        """Total dataflow analysis time (the Table-2 column)."""
        return (
            self.cfg_build
            + self.initialization
            + self.psg_build
            + self.phase1
            + self.phase2
        )

    def fractions(self) -> Dict[str, float]:
        """Per-stage fraction of total time (the Figure-13 bars)."""
        total = self.total
        if total <= 0:
            return {name: 0.0 for name in STAGE_NAMES}
        return {name: getattr(self, name) / total for name in STAGE_NAMES}

    def as_dict(self) -> Dict[str, float]:
        result = {name: getattr(self, name) for name in STAGE_NAMES}
        result["total"] = self.total
        return result


@dataclass
class StageTimer:
    """Accumulates wall-clock time into a :class:`StageTimings`."""

    timings: StageTimings = field(default_factory=StageTimings)

    @contextmanager
    def stage(self, name: str) -> Iterator[None]:
        """Time a ``with`` block under stage ``name``.

        Every timed stage also opens an obs span of the same name, so
        ``--trace`` gets the Figure-13 stage breakdown for free.
        """
        if name not in STAGE_NAMES:
            raise ValueError(f"unknown stage {name!r}")
        start = time.perf_counter()
        try:
            with _obs_span(name, kind="stage"):
                yield
        finally:
            elapsed = time.perf_counter() - start
            setattr(self.timings, name, getattr(self.timings, name) + elapsed)


#: Incremental stage names, in pipeline order (superset of the paper's
#: five: fingerprinting and summary assembly are incremental-only).
INCREMENTAL_STAGES = (
    "cfg_build",
    "fingerprint",
    "initialization",
    "psg_build",
    "phase1",
    "phase2",
    "assemble",
)


@dataclass
class IncrementalMetrics:
    """What one incremental analysis run did, and how long it took.

    ``phaseN_solved`` counts routines whose phase-N answer was
    recomputed this run; ``phaseN_reused`` counts routines whose
    cached answer was kept.  ``solved + reused == routines_total`` per
    phase on a warm run.
    """

    routines_total: int = 0
    #: Routines whose content fingerprint changed (or that are new).
    dirty_routines: List[str] = field(default_factory=list)
    cold: bool = False
    phase1_solved: int = 0
    phase1_reused: int = 0
    phase2_solved: int = 0
    phase2_reused: int = 0
    phase1_sccs_solved: int = 0
    phase2_sccs_solved: int = 0
    phase1_iterations: int = 0
    phase2_iterations: int = 0
    #: Routines whose phase-N answer was adopted from the cross-image
    #: summary store (:mod:`repro.interproc.store`) instead of being
    #: solved or reused from the per-image cache.
    phase1_store_hits: int = 0
    phase2_store_hits: int = 0
    #: stage name -> wall seconds (keys from :data:`INCREMENTAL_STAGES`).
    seconds: Dict[str, float] = field(default_factory=dict)

    @property
    def total_seconds(self) -> float:
        return sum(self.seconds.values())

    @contextmanager
    def stage(self, name: str) -> Iterator[None]:
        """Time a ``with`` block under incremental stage ``name``."""
        if name not in INCREMENTAL_STAGES:
            raise ValueError(f"unknown incremental stage {name!r}")
        start = time.perf_counter()
        try:
            with _obs_span(name, kind="stage", incremental=True):
                yield
        finally:
            elapsed = time.perf_counter() - start
            self.seconds[name] = self.seconds.get(name, 0.0) + elapsed

    def as_dict(self) -> Dict[str, object]:
        """JSON-ready form of the incremental work metrics."""
        return {
            "mode": "cold" if self.cold else "warm",
            "routines_total": self.routines_total,
            "dirty_routines": list(self.dirty_routines),
            "phase1_solved": self.phase1_solved,
            "phase1_reused": self.phase1_reused,
            "phase2_solved": self.phase2_solved,
            "phase2_reused": self.phase2_reused,
            "phase1_sccs_solved": self.phase1_sccs_solved,
            "phase2_sccs_solved": self.phase2_sccs_solved,
            "phase1_iterations": self.phase1_iterations,
            "phase2_iterations": self.phase2_iterations,
            "phase1_store_hits": self.phase1_store_hits,
            "phase2_store_hits": self.phase2_store_hits,
            "seconds": dict(self.seconds),
            "total_seconds": self.total_seconds,
        }

    def render(self) -> str:
        """The human-readable ``--stats`` block."""
        lines = [
            f"mode:               {'cold' if self.cold else 'warm'}",
            f"routines:           {self.routines_total}",
            f"dirty routines:     {len(self.dirty_routines)}"
            + (
                f"  ({', '.join(self.dirty_routines[:8])}"
                + (", ..." if len(self.dirty_routines) > 8 else "")
                + ")"
                if self.dirty_routines
                else ""
            ),
            f"phase1 solved:      {self.phase1_solved}  "
            f"(reused {self.phase1_reused}, "
            f"{self.phase1_sccs_solved} SCCs, "
            f"{self.phase1_iterations} iterations)",
            f"phase2 solved:      {self.phase2_solved}  "
            f"(reused {self.phase2_reused}, "
            f"{self.phase2_sccs_solved} SCCs, "
            f"{self.phase2_iterations} iterations)",
            f"total time:         {self.total_seconds:.3f} s",
        ]
        if self.phase1_store_hits or self.phase2_store_hits:
            lines.insert(
                -1,
                f"store hits:         phase1 {self.phase1_store_hits}, "
                f"phase2 {self.phase2_store_hits}",
            )
        for name in INCREMENTAL_STAGES:
            if name in self.seconds:
                lines.append(f"  {name:<16}{self.seconds[name]:.3f} s")
        return "\n".join(lines)


@dataclass
class QueryMetrics(IncrementalMetrics):
    """What one demand-driven query did (:mod:`repro.interproc.demand`).

    Extends :class:`IncrementalMetrics` — a query *is* a scoped warm
    run — with the queried routine and the size of the two dependency
    cones it was restricted to.  ``phaseN_solved + phaseN_reused`` sums
    to the cone size, not ``routines_total``: routines outside the
    cones are never examined at all.
    """

    routine: str = ""
    #: SCC-condensation components in the phase-1 (callee) cone.
    phase1_cone_components: int = 0
    #: Components in the phase-2 (caller) cone.
    phase2_cone_components: int = 0
    #: Routines in the phase-1 cone.
    phase1_cone_routines: int = 0
    #: Routines in the phase-2 cone (the memo write-back scope).
    phase2_cone_routines: int = 0
    #: Cache entries the memo write-back had to discard (stale facts
    #: outside the solved cone that only a re-solve can refresh).
    memo_dropped: int = 0

    def as_dict(self) -> Dict[str, object]:
        payload = super().as_dict()
        payload.update(
            routine=self.routine,
            phase1_cone_components=self.phase1_cone_components,
            phase2_cone_components=self.phase2_cone_components,
            phase1_cone_routines=self.phase1_cone_routines,
            phase2_cone_routines=self.phase2_cone_routines,
            memo_dropped=self.memo_dropped,
        )
        return payload

    def render(self) -> str:
        lines = [
            f"routine:            {self.routine}",
            f"cone (phase1):      {self.phase1_cone_routines} routines in "
            f"{self.phase1_cone_components} components",
            f"cone (phase2):      {self.phase2_cone_routines} routines in "
            f"{self.phase2_cone_components} components",
            f"memo dropped:       {self.memo_dropped}",
        ]
        return "\n".join(lines) + "\n" + super().render()


@dataclass
class ShardMetrics:
    """What one shard's two solves did, measured inside the worker."""

    shard: int
    routines: int
    cost: int
    #: stage name -> seconds spent on this shard ("initialization",
    #: "psg_build", "phase1", "phase2", "assemble"); a stage is absent
    #: when the shard skipped it (e.g. a clean shard on a warm run).
    seconds: Dict[str, float] = field(default_factory=dict)
    phase1_iterations: int = 0
    phase2_iterations: int = 0

    @property
    def busy_seconds(self) -> float:
        return sum(self.seconds.values())

    def merge_stage(self, name: str, seconds: float) -> None:
        self.seconds[name] = self.seconds.get(name, 0.0) + seconds


@dataclass
class ParallelMetrics:
    """One sharded parallel run: shard timings + utilization summary.

    ``wall_seconds`` holds the parent-side wall clock per stage
    ("cfg_build", "partition", "phase1", "phase2"); the phase entries
    cover a whole scheduling wave, pool latency included.  Worker-side
    busy time lives in the per-shard records, so
    ``busy / (wall * jobs)`` is the pool utilization — 1.0 means every
    worker was solving for the whole wave, i.e. perfect scaling.
    """

    jobs: int = 1
    shard_count: int = 0
    routines_total: int = 0
    shards: List[ShardMetrics] = field(default_factory=list)
    wall_seconds: Dict[str, float] = field(default_factory=dict)
    #: Shards whose cached answers were kept (warm runs only).
    shards_reused: int = 0
    #: Worker-side busy seconds of the parallel front end, per
    #: sub-stage ("cfg_build", "initialization"); empty when the front
    #: end ran serially (jobs == 1, or a warm run).  The corresponding
    #: parent wall clock is ``wall_seconds["frontend"]``.
    frontend_seconds: Dict[str, float] = field(default_factory=dict)

    @contextmanager
    def stage(self, name: str) -> Iterator[None]:
        """Time a parent-side ``with`` block under ``name``."""
        start = time.perf_counter()
        try:
            with _obs_span(name, kind="stage", parallel=True):
                yield
        finally:
            elapsed = time.perf_counter() - start
            self.wall_seconds[name] = (
                self.wall_seconds.get(name, 0.0) + elapsed
            )

    @property
    def total_wall_seconds(self) -> float:
        return sum(self.wall_seconds.values())

    @property
    def busy_seconds(self) -> float:
        return sum(shard.busy_seconds for shard in self.shards)

    def solve_wall_seconds(self) -> float:
        """Wall time of the two scheduled waves (the parallel region)."""
        return self.wall_seconds.get("phase1", 0.0) + self.wall_seconds.get(
            "phase2", 0.0
        )

    def utilization(self) -> float:
        """Busy fraction of the pool across the two solve waves."""
        wall = self.solve_wall_seconds()
        if wall <= 0 or self.jobs <= 0:
            return 0.0
        return min(1.0, self.busy_seconds / (wall * self.jobs))

    def as_dict(self) -> Dict[str, object]:
        """JSON-ready form (the ``--json`` stats payload)."""
        return {
            "jobs": self.jobs,
            "shard_count": self.shard_count,
            "shards_reused": self.shards_reused,
            "routines_total": self.routines_total,
            "wall_seconds": dict(self.wall_seconds),
            "frontend_seconds": dict(self.frontend_seconds),
            "total_wall_seconds": self.total_wall_seconds,
            "busy_seconds": self.busy_seconds,
            "utilization": self.utilization(),
            "shards": [
                {
                    "shard": shard.shard,
                    "routines": shard.routines,
                    "cost": shard.cost,
                    "seconds": dict(shard.seconds),
                    "phase1_iterations": shard.phase1_iterations,
                    "phase2_iterations": shard.phase2_iterations,
                }
                for shard in self.shards
            ],
        }

    def render(self) -> str:
        """The human-readable utilization summary."""
        lines = [
            f"jobs:               {self.jobs}",
            f"shards:             {self.shard_count}"
            + (
                f"  (reused {self.shards_reused})"
                if self.shards_reused
                else ""
            ),
            f"wall time:          {self.total_wall_seconds:.3f} s",
            f"worker busy time:   {self.busy_seconds:.3f} s",
            f"pool utilization:   {self.utilization():.1%}",
        ]
        for name in ("frontend", "cfg_build", "partition", "phase1", "phase2"):
            if name in self.wall_seconds:
                lines.append(
                    f"  {name:<16}{self.wall_seconds[name]:.3f} s"
                )
        busiest = sorted(
            self.shards, key=lambda shard: -shard.busy_seconds
        )[:5]
        for shard in busiest:
            lines.append(
                f"  shard {shard.shard:<4} {shard.routines:>5} routines  "
                f"cost {shard.cost:<8} busy {shard.busy_seconds:.3f} s"
            )
        return "\n".join(lines)
