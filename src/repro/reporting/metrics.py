"""Stage timing and incremental-analysis metrics.

The paper breaks total analysis time into five stages: CFG Build,
Initialization (DEF/UBD generation), PSG Build, Phase 1 and Phase 2.
:class:`StageTimer` measures them with a monotonic clock and
:class:`StageTimings` carries the results.

:class:`IncrementalMetrics` instruments the incremental re-analysis
engine (:mod:`repro.interproc.incremental`): routines re-solved versus
reused per phase, SCCs solved, worklist iterations, and per-stage wall
time — the numbers ``spike-analyze analyze --incremental --stats``
prints and the warm/cold benchmarks report.
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Dict, Iterator, List

#: Stage names, in pipeline order (the Figure-13 legend).
STAGE_NAMES = ("cfg_build", "initialization", "psg_build", "phase1", "phase2")


@dataclass
class StageTimings:
    """Seconds spent in each stage of one analysis run."""

    cfg_build: float = 0.0
    initialization: float = 0.0
    psg_build: float = 0.0
    phase1: float = 0.0
    phase2: float = 0.0

    @property
    def total(self) -> float:
        """Total dataflow analysis time (the Table-2 column)."""
        return (
            self.cfg_build
            + self.initialization
            + self.psg_build
            + self.phase1
            + self.phase2
        )

    def fractions(self) -> Dict[str, float]:
        """Per-stage fraction of total time (the Figure-13 bars)."""
        total = self.total
        if total <= 0:
            return {name: 0.0 for name in STAGE_NAMES}
        return {name: getattr(self, name) / total for name in STAGE_NAMES}

    def as_dict(self) -> Dict[str, float]:
        result = {name: getattr(self, name) for name in STAGE_NAMES}
        result["total"] = self.total
        return result


@dataclass
class StageTimer:
    """Accumulates wall-clock time into a :class:`StageTimings`."""

    timings: StageTimings = field(default_factory=StageTimings)

    @contextmanager
    def stage(self, name: str) -> Iterator[None]:
        """Time a ``with`` block under stage ``name``."""
        if name not in STAGE_NAMES:
            raise ValueError(f"unknown stage {name!r}")
        start = time.perf_counter()
        try:
            yield
        finally:
            elapsed = time.perf_counter() - start
            setattr(self.timings, name, getattr(self.timings, name) + elapsed)


#: Incremental stage names, in pipeline order (superset of the paper's
#: five: fingerprinting and summary assembly are incremental-only).
INCREMENTAL_STAGES = (
    "cfg_build",
    "fingerprint",
    "initialization",
    "psg_build",
    "phase1",
    "phase2",
    "assemble",
)


@dataclass
class IncrementalMetrics:
    """What one incremental analysis run did, and how long it took.

    ``phaseN_solved`` counts routines whose phase-N answer was
    recomputed this run; ``phaseN_reused`` counts routines whose
    cached answer was kept.  ``solved + reused == routines_total`` per
    phase on a warm run.
    """

    routines_total: int = 0
    #: Routines whose content fingerprint changed (or that are new).
    dirty_routines: List[str] = field(default_factory=list)
    cold: bool = False
    phase1_solved: int = 0
    phase1_reused: int = 0
    phase2_solved: int = 0
    phase2_reused: int = 0
    phase1_sccs_solved: int = 0
    phase2_sccs_solved: int = 0
    phase1_iterations: int = 0
    phase2_iterations: int = 0
    #: stage name -> wall seconds (keys from :data:`INCREMENTAL_STAGES`).
    seconds: Dict[str, float] = field(default_factory=dict)

    @property
    def total_seconds(self) -> float:
        return sum(self.seconds.values())

    @contextmanager
    def stage(self, name: str) -> Iterator[None]:
        """Time a ``with`` block under incremental stage ``name``."""
        if name not in INCREMENTAL_STAGES:
            raise ValueError(f"unknown incremental stage {name!r}")
        start = time.perf_counter()
        try:
            yield
        finally:
            elapsed = time.perf_counter() - start
            self.seconds[name] = self.seconds.get(name, 0.0) + elapsed

    def render(self) -> str:
        """The human-readable ``--stats`` block."""
        lines = [
            f"mode:               {'cold' if self.cold else 'warm'}",
            f"routines:           {self.routines_total}",
            f"dirty routines:     {len(self.dirty_routines)}"
            + (
                f"  ({', '.join(self.dirty_routines[:8])}"
                + (", ..." if len(self.dirty_routines) > 8 else "")
                + ")"
                if self.dirty_routines
                else ""
            ),
            f"phase1 solved:      {self.phase1_solved}  "
            f"(reused {self.phase1_reused}, "
            f"{self.phase1_sccs_solved} SCCs, "
            f"{self.phase1_iterations} iterations)",
            f"phase2 solved:      {self.phase2_solved}  "
            f"(reused {self.phase2_reused}, "
            f"{self.phase2_sccs_solved} SCCs, "
            f"{self.phase2_iterations} iterations)",
            f"total time:         {self.total_seconds:.3f} s",
        ]
        for name in INCREMENTAL_STAGES:
            if name in self.seconds:
                lines.append(f"  {name:<16}{self.seconds[name]:.3f} s")
        return "\n".join(lines)
