"""Stage timing for the dataflow pipeline (Figure 13).

The paper breaks total analysis time into five stages: CFG Build,
Initialization (DEF/UBD generation), PSG Build, Phase 1 and Phase 2.
:class:`StageTimer` measures them with a monotonic clock and
:class:`StageTimings` carries the results.
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Dict, Iterator

#: Stage names, in pipeline order (the Figure-13 legend).
STAGE_NAMES = ("cfg_build", "initialization", "psg_build", "phase1", "phase2")


@dataclass
class StageTimings:
    """Seconds spent in each stage of one analysis run."""

    cfg_build: float = 0.0
    initialization: float = 0.0
    psg_build: float = 0.0
    phase1: float = 0.0
    phase2: float = 0.0

    @property
    def total(self) -> float:
        """Total dataflow analysis time (the Table-2 column)."""
        return (
            self.cfg_build
            + self.initialization
            + self.psg_build
            + self.phase1
            + self.phase2
        )

    def fractions(self) -> Dict[str, float]:
        """Per-stage fraction of total time (the Figure-13 bars)."""
        total = self.total
        if total <= 0:
            return {name: 0.0 for name in STAGE_NAMES}
        return {name: getattr(self, name) / total for name in STAGE_NAMES}

    def as_dict(self) -> Dict[str, float]:
        result = {name: getattr(self, name) for name in STAGE_NAMES}
        result["total"] = self.total
        return result


@dataclass
class StageTimer:
    """Accumulates wall-clock time into a :class:`StageTimings`."""

    timings: StageTimings = field(default_factory=StageTimings)

    @contextmanager
    def stage(self, name: str) -> Iterator[None]:
        """Time a ``with`` block under stage ``name``."""
        if name not in STAGE_NAMES:
            raise ValueError(f"unknown stage {name!r}")
        start = time.perf_counter()
        try:
            yield
        finally:
            elapsed = time.perf_counter() - start
            setattr(self.timings, name, getattr(self.timings, name) + elapsed)
