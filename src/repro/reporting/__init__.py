"""Measurement and presentation helpers for the §4 experiments.

* :mod:`repro.reporting.metrics` — stage timers matching Figure 13's
  breakdown (CFG Build / Initialization / PSG Build / Phase 1 /
  Phase 2);
* :mod:`repro.reporting.memory` — the explicit memory model used to
  report "Memory Usage" in Table 2 and Figure 15 (set/node/edge byte
  costs, mirroring the paper's own accounting discussion);
* :mod:`repro.reporting.tables` — text renderers that print results in
  the shape of the paper's tables.
"""

from repro.reporting.metrics import StageTimings, StageTimer
from repro.reporting.memory import (
    MemoryModel,
    cfg_analysis_memory,
    psg_analysis_memory,
)
from repro.reporting.tables import format_table, format_markdown_table
from repro.reporting.dot import cfg_to_dot, psg_to_dot
from repro.reporting.annotate import render_annotated_listing

__all__ = [
    "MemoryModel",
    "render_annotated_listing",
    "StageTimer",
    "StageTimings",
    "cfg_analysis_memory",
    "cfg_to_dot",
    "format_markdown_table",
    "format_table",
    "psg_analysis_memory",
    "psg_to_dot",
]
