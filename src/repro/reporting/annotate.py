"""Summary-annotated disassembly listings.

The paper's figures present code with the interprocedural facts inline:

.. code-block:: none

    def Ra
    call [ used by call = {Rb} ]      (Figure 1b)
    ...
    ret [ used on return = {} ]       (Figure 1a)

This module renders exactly that view for a whole analyzed program:
each call instruction is annotated with the callee's call-used /
call-defined / call-killed sets, each return with the live-at-exit set,
and each routine header with its entry summary — the human-readable
face of :class:`~repro.interproc.summaries.RoutineSummary`.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, List, Optional

from repro.dataflow.regset import RegisterSet
from repro.isa.instructions import ControlKind
from repro.cfg.cfg import ExitKind

if TYPE_CHECKING:  # avoid a package-init cycle with repro.interproc
    from repro.interproc.analysis import InterproceduralAnalysis


def _set(mask: int) -> str:
    return repr(RegisterSet.from_mask(mask))


def render_annotated_listing(
    analysis: "InterproceduralAnalysis",
    routines: Optional[List[str]] = None,
) -> str:
    """Render the paper-style annotated listing.

    ``routines`` restricts output to the named routines (default: all,
    in address order).
    """
    program = analysis.program
    names = routines if routines is not None else program.routine_names()
    lines: List[str] = []
    for name in names:
        routine = program.routine(name)
        summary = analysis.summary(name)
        cfg = analysis.cfgs[name]
        lines.append(
            f"{name}:  [ live-at-entry = {_set(summary.live_at_entry_mask)} ]"
        )
        lines.append(
            f"    ; call-used = {_set(summary.call_used_mask)}  "
            f"call-defined = {_set(summary.call_defined_mask)}  "
            f"call-killed = {_set(summary.call_killed_mask)}"
        )
        if summary.saved_restored_mask:
            lines.append(
                f"    ; saves/restores {_set(summary.saved_restored_mask)}"
            )
        site_by_index = {
            s.site.instruction_index: s for s in summary.call_sites
        }
        exit_by_block = dict(summary.exit_kinds)
        for index, instruction in enumerate(routine.instructions):
            address = routine.address_of(index)
            text = f"    {address:#010x}  {instruction.render()}"
            control = instruction.opcode.control
            if control in (ControlKind.CALL_DIRECT, ControlKind.CALL_INDIRECT):
                site = site_by_index.get(index)
                if site is not None:
                    target = (
                        "/".join(site.site.targets)
                        if site.site.targets
                        else "<unknown>"
                    )
                    text += (
                        f"    [ {target}: used = {_set(site.used_mask)}, "
                        f"defined = {_set(site.defined_mask)}, "
                        f"killed = {_set(site.killed_mask)} ]"
                    )
            elif control == ControlKind.RETURN:
                block = cfg.block_of_instruction(index).index
                if exit_by_block.get(block) == ExitKind.RETURN:
                    mask = summary.exit_live_masks[block]
                    text += f"    [ used on return = {_set(mask)} ]"
            lines.append(text)
        lines.append("")
    return "\n".join(lines)
