"""The memory model behind Table 2 / Figure 15 and the §4 comparison.

The paper's memory numbers count the dataflow state the analysis must
hold, and its PSG-vs-CFG argument is an accounting argument: "a basic
block contains the MAY-USE_IN/OUT, MAY-DEF_IN/OUT, MUST-DEF_IN/OUT
dataflow sets as well as the DEF and UBD sets ... In contrast, a PSG
node contains just three dataflow sets."

We reproduce that accounting explicitly rather than measuring the
Python heap (whose per-object overhead would swamp the structural
signal).  One register set is a 64-bit vector (8 bytes); structures add
a small fixed cost:

===========================  ======================================
item                         bytes
===========================  ======================================
PSG node                     3 sets + id/kind/location  = 32
PSG edge (flow or c-r)       3 sets + endpoints         = 32
CFG basic block (PSG mode)   DEF + UBD + block record   = 32
CFG basic block (CFG mode)   8 sets + block record      = 80
CFG arc                      8
===========================  ======================================
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Mapping

from repro.cfg.cfg import ControlFlowGraph
from repro.psg.graph import ProgramSummaryGraph

#: Bytes in one register set (64 registers = one 64-bit word).
SET_BYTES = 8


@dataclass(frozen=True)
class MemoryModel:
    """Byte costs for each analysis structure."""

    psg_node_bytes: int = 3 * SET_BYTES + 8
    psg_edge_bytes: int = 3 * SET_BYTES + 8
    block_bytes_psg_mode: int = 2 * SET_BYTES + 16
    block_bytes_cfg_mode: int = 8 * SET_BYTES + 16
    arc_bytes: int = 8


DEFAULT_MODEL = MemoryModel()


def psg_analysis_memory(
    psg: ProgramSummaryGraph,
    cfgs: Mapping[str, ControlFlowGraph],
    model: MemoryModel = DEFAULT_MODEL,
) -> int:
    """Bytes of analysis state for the PSG-based analysis.

    Counts the PSG (nodes + edges, each holding three sets), plus the
    CFG skeleton with its DEF/UBD sets (needed to build the PSG).
    """
    blocks = sum(cfg.block_count for cfg in cfgs.values())
    arcs = sum(cfg.arc_count for cfg in cfgs.values())
    return (
        psg.node_count * model.psg_node_bytes
        + psg.edge_count * model.psg_edge_bytes
        + blocks * model.block_bytes_psg_mode
        + arcs * model.arc_bytes
    )


def cfg_analysis_memory(
    cfgs: Mapping[str, ControlFlowGraph],
    call_arc_count: int,
    model: MemoryModel = DEFAULT_MODEL,
) -> int:
    """Bytes of analysis state for the whole-program-CFG baseline.

    Every basic block carries the six IN/OUT dataflow sets plus DEF and
    UBD; arcs include the interprocedural call/return arcs.
    """
    blocks = sum(cfg.block_count for cfg in cfgs.values())
    arcs = sum(cfg.arc_count for cfg in cfgs.values()) + call_arc_count
    return blocks * model.block_bytes_cfg_mode + arcs * model.arc_bytes


def memory_breakdown(
    psg: ProgramSummaryGraph,
    cfgs: Mapping[str, ControlFlowGraph],
    model: MemoryModel = DEFAULT_MODEL,
) -> Dict[str, int]:
    """Itemized byte counts (for EXPERIMENTS.md and the memory bench)."""
    blocks = sum(cfg.block_count for cfg in cfgs.values())
    arcs = sum(cfg.arc_count for cfg in cfgs.values())
    return {
        "psg_nodes": psg.node_count * model.psg_node_bytes,
        "psg_edges": psg.edge_count * model.psg_edge_bytes,
        "cfg_blocks": blocks * model.block_bytes_psg_mode,
        "cfg_arcs": arcs * model.arc_bytes,
    }
