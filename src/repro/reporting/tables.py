"""Text table renderers in the visual shape of the paper's tables."""

from __future__ import annotations

from typing import Iterable, List, Sequence, Union

Cell = Union[str, int, float]


def _format_cell(cell: Cell) -> str:
    if isinstance(cell, float):
        if cell == 0:
            return "0"
        if abs(cell) >= 1000:
            return f"{cell:,.0f}"
        if abs(cell) >= 10:
            return f"{cell:.1f}"
        return f"{cell:.2f}"
    if isinstance(cell, int):
        return f"{cell:,}"
    return str(cell)


def format_table(
    headers: Sequence[str],
    rows: Iterable[Sequence[Cell]],
    title: str = "",
) -> str:
    """Render an aligned plain-text table.

    The first column is left-aligned (benchmark names); the rest are
    right-aligned (numbers), matching the paper's layout.
    """
    text_rows: List[List[str]] = [[_format_cell(c) for c in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in text_rows:
        if len(row) != len(headers):
            raise ValueError(
                f"row has {len(row)} cells, expected {len(headers)}"
            )
        for index, cell in enumerate(row):
            widths[index] = max(widths[index], len(cell))

    def render_row(cells: Sequence[str]) -> str:
        parts = []
        for index, cell in enumerate(cells):
            if index == 0:
                parts.append(cell.ljust(widths[index]))
            else:
                parts.append(cell.rjust(widths[index]))
        return "  ".join(parts).rstrip()

    lines: List[str] = []
    if title:
        lines.append(title)
    lines.append(render_row(list(headers)))
    lines.append("  ".join("-" * w for w in widths))
    lines.extend(render_row(row) for row in text_rows)
    return "\n".join(lines)


def format_markdown_table(
    headers: Sequence[str],
    rows: Iterable[Sequence[Cell]],
) -> str:
    """Render a GitHub-flavored markdown table (for EXPERIMENTS.md)."""
    lines = ["| " + " | ".join(headers) + " |"]
    lines.append("|" + "|".join("---" for _ in headers) + "|")
    for row in rows:
        lines.append("| " + " | ".join(_format_cell(c) for c in row) + " |")
    return "\n".join(lines)
