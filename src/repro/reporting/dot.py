"""Graphviz DOT export for CFGs and PSGs.

Handy for inspecting what the analysis built — render with e.g.
``dot -Tsvg out.dot -o out.svg``.  The PSG export mirrors the paper's
figures: entry/exit nodes as ellipses, call/return pairs as boxes
joined by a dashed call-return edge, branch nodes as diamonds, and
flow-summary edges labeled with their (MAY-USE, MAY-DEF, MUST-DEF)
sets.
"""

from __future__ import annotations

from typing import List, Optional

from repro.dataflow.regset import RegisterSet
from repro.cfg.cfg import ControlFlowGraph, TerminatorKind
from repro.psg.graph import ProgramSummaryGraph
from repro.psg.nodes import NodeKind


def _escape(text: str) -> str:
    return text.replace("\\", "\\\\").replace('"', '\\"')


def cfg_to_dot(cfg: ControlFlowGraph, max_instructions: int = 4) -> str:
    """One routine's CFG as a DOT digraph.

    Each block shows up to ``max_instructions`` instructions; call and
    exit blocks are highlighted.
    """
    lines: List[str] = [
        f'digraph "{_escape(cfg.routine.name)}_cfg" {{',
        "  node [shape=box, fontname=monospace, fontsize=9];",
    ]
    for block in cfg.blocks:
        body = [str(i) for i in block.instructions[:max_instructions]]
        if len(block.instructions) > max_instructions:
            body.append(f"... +{len(block.instructions) - max_instructions}")
        label = f"B{block.index}\\n" + "\\l".join(_escape(t) for t in body) + "\\l"
        attributes = [f'label="{label}"']
        if block.terminator == TerminatorKind.CALL:
            attributes.append('style=filled fillcolor="#cfe8ff"')
        elif block.is_exit:
            attributes.append('style=filled fillcolor="#ffd9cf"')
        elif block.index == cfg.entry_index:
            attributes.append('style=filled fillcolor="#d8f5d3"')
        lines.append(f"  b{block.index} [{' '.join(attributes)}];")
    for block in cfg.blocks:
        for successor in block.successors:
            lines.append(f"  b{block.index} -> b{successor};")
    lines.append("}")
    return "\n".join(lines)


def _set_label(mask: int) -> str:
    return _escape(repr(RegisterSet.from_mask(mask)))


def psg_to_dot(
    psg: ProgramSummaryGraph,
    routine: Optional[str] = None,
    show_labels: bool = True,
) -> str:
    """The PSG (or one routine's slice of it) as a DOT digraph."""
    selected = None if routine is None else {routine}
    lines: List[str] = [
        'digraph "psg" {',
        "  node [fontname=monospace, fontsize=9];",
        "  edge [fontname=monospace, fontsize=8];",
    ]
    shapes = {
        NodeKind.ENTRY: "ellipse",
        NodeKind.EXIT: "ellipse",
        NodeKind.CALL: "box",
        NodeKind.RETURN: "box",
        NodeKind.BRANCH: "diamond",
    }
    wanted = set()
    for node in psg.nodes:
        if selected is not None and node.routine not in selected:
            continue
        wanted.add(node.id)
        extra = ""
        if node.kind == NodeKind.ENTRY:
            extra = ' style=filled fillcolor="#d8f5d3"'
        elif node.kind == NodeKind.EXIT:
            extra = ' style=filled fillcolor="#ffd9cf"'
        lines.append(
            f'  n{node.id} [shape={shapes[node.kind]} '
            f'label="{_escape(node.describe())}"{extra}];'
        )
    for edge in psg.flow_edges:
        if edge.src not in wanted or edge.dst not in wanted:
            continue
        if show_labels:
            label = (
                f"U:{_set_label(edge.label.may_use)}\\n"
                f"D:{_set_label(edge.label.may_def)}\\n"
                f"M:{_set_label(edge.label.must_def)}"
            )
            lines.append(f'  n{edge.src} -> n{edge.dst} [label="{label}"];')
        else:
            lines.append(f"  n{edge.src} -> n{edge.dst};")
    for edge in psg.call_return_edges:
        if edge.src not in wanted or edge.dst not in wanted:
            continue
        callees = ",".join(edge.callees) if edge.callees else "?"
        lines.append(
            f'  n{edge.src} -> n{edge.dst} '
            f'[style=dashed label="{_escape(callees)}"];'
        )
    lines.append("}")
    return "\n".join(lines)
