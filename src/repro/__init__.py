"""repro — Interprocedural Dataflow Analysis in an Executable Optimizer.

A from-scratch reproduction of David W. Goodwin's PLDI 1997 paper
describing Spike, Digital's post-link-time optimizer for Alpha/NT
executables.  The package implements:

* an Alpha-like ISA and executable image format (:mod:`repro.isa`,
  :mod:`repro.program`);
* per-routine CFG construction with jump-table extraction and a call
  graph (:mod:`repro.cfg`);
* the **Program Summary Graph** and its flow-summary-edge labeling
  (:mod:`repro.psg`, :mod:`repro.dataflow`);
* the **two-phase interprocedural dataflow** computing call-used /
  call-defined / call-killed and live-at-entry / live-at-exit
  (:mod:`repro.interproc`), plus the whole-program-CFG baseline;
* the summary-driven **optimizations** of the paper's Figure 1 with a
  relocating binary rewriter (:mod:`repro.opt`,
  :mod:`repro.program.rewrite`);
* an **interpreter** used as correctness oracle and performance meter
  (:mod:`repro.sim`);
* synthetic **workloads** shaped like the paper's benchmarks
  (:mod:`repro.workloads`) and reporting helpers (:mod:`repro.reporting`).

Quickstart::

    from repro import AnalysisSession, assemble

    image = assemble('''
    .routine main export
        li   a0, 41
        bsr  ra, inc
        bis  zero, v0, a0
        output
        halt
    .routine inc
        addq a0, #1, v0
        ret  (ra)
    ''')
    session = AnalysisSession.from_image(image)
    analysis = session.analyze()                    # or analyze(jobs=4)
    print(session.summary("inc").call_used)         # {a0, ra}
    print(session.summary("inc").call_defined)      # {v0}
"""

from repro.api import AnalysisError, AnalysisSession
from repro.dataflow.regset import EMPTY_SET, UNIVERSE, RegisterSet
from repro.interproc.analysis import AnalysisConfig, InterproceduralAnalysis
from repro.interproc.baseline import analyze_program_baseline
from repro.interproc.summaries import (
    SummarySet,
    CallSiteSummary,
    RoutineSummary,
)
from repro.isa.calling_convention import NT_ALPHA, CallingConvention
from repro.isa.instructions import Instruction, Opcode
from repro.isa.registers import Register
from repro.opt.pipeline import OptimizationResult
from repro.program.asm import Assembler, assemble
from repro.program.disasm import disassemble_image, load_program, render_listing
from repro.program.image import ExecutableImage
from repro.program.model import Program, Routine
from repro.program.rewrite import apply_edits, program_to_image
from repro.psg.build import PsgConfig, build_psg
from repro.psg.graph import ProgramSummaryGraph
from repro.sim.interpreter import ExecutionResult, run_program
from repro.workloads.generator import GeneratorConfig, generate_benchmark
from repro.workloads.shapes import ALL_SHAPES, BenchmarkShape, shape_by_name

__version__ = "1.0.0"

__all__ = [
    "ALL_SHAPES",
    "AnalysisConfig",
    "AnalysisError",
    "SummarySet",
    "AnalysisSession",
    "Assembler",
    "BenchmarkShape",
    "CallSiteSummary",
    "CallingConvention",
    "EMPTY_SET",
    "ExecutableImage",
    "ExecutionResult",
    "Instruction",
    "InterproceduralAnalysis",
    "NT_ALPHA",
    "Opcode",
    "OptimizationResult",
    "Program",
    "ProgramSummaryGraph",
    "PsgConfig",
    "Register",
    "RegisterSet",
    "Routine",
    "RoutineSummary",
    "UNIVERSE",
    "analyze_program_baseline",
    "apply_edits",
    "assemble",
    "build_psg",
    "disassemble_image",
    "generate_benchmark",
    "load_program",
    "program_to_image",
    "render_listing",
    "run_program",
    "shape_by_name",
    "__version__",
]
