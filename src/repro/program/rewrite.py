"""Binary rewriting: apply optimizer edits and relink the program.

Spike is an executable *rewriter*: deleting an instruction shifts every
later instruction, so branch displacements, call displacements,
address-materialization sequences and jump tables must all be fixed up.
This module implements that relinking for the decoded program model:

* ``apply_edits(program, edits)`` deletes / replaces instructions and
  produces a new, fully consistent :class:`Program`:

  - PC-relative branches and direct calls are re-displaced through an
    old-address → new-address map (targets that were deleted resolve to
    the next surviving instruction);
  - ``ldah``/``lda`` chains that materialize a routine's entry address
    (indirect-call targets) are re-split for the routine's new address;
  - jump tables are patched in place in the data section, so data
    addresses never move.

* ``program_to_image(program)`` re-serializes a program into an
  executable image (the inverse of
  :func:`repro.program.disasm.disassemble_image`).

Restrictions (checked): only fall-through instructions may be deleted,
and a replacement must keep the original's control behaviour — the
optimizer passes in :mod:`repro.opt` only ever need register renames
and straight-line deletions.
"""

from __future__ import annotations

from dataclasses import replace as dataclass_replace
from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.isa.encoding import INSTRUCTION_SIZE, encode_stream
from repro.isa.instructions import ControlKind, Instruction, Opcode
from repro.isa.registers import ZERO_REGISTER
from repro.program.image import (
    CallTargetHint,
    ExecutableImage,
    JumpTableInfo,
    Symbol,
)
from repro.program.model import Program, ProgramError, Routine

#: routine name -> {instruction index: replacement or None (= delete)}.
Edits = Dict[str, Dict[int, Optional[Instruction]]]


class RewriteError(ValueError):
    """Raised when edits cannot be applied consistently."""


def apply_edits(program: Program, edits: Edits) -> Program:
    """Apply ``edits`` and relink; returns a new program."""
    for name in edits:
        if name not in program.routine_names():
            raise RewriteError(f"edits name unknown routine {name!r}")

    ordered = sorted(program.routines, key=lambda r: r.address)
    text_base = ordered[0].address

    # ------------------------------------------------------------------
    # 1. Layout: which instructions survive, and where they land.
    # ------------------------------------------------------------------
    kept: Dict[str, List[Tuple[int, Instruction]]] = {}
    new_address: Dict[str, int] = {}
    cursor = text_base
    for routine in ordered:
        routine_edits = edits.get(routine.name, {})
        survivors: List[Tuple[int, Instruction]] = []
        for index, instruction in enumerate(routine.instructions):
            if index in routine_edits:
                replacement = routine_edits[index]
                if replacement is None:
                    if instruction.opcode.control != ControlKind.FALLTHROUGH:
                        raise RewriteError(
                            f"{routine.name!r}: cannot delete control "
                            f"instruction at index {index}"
                        )
                    continue
                if replacement.opcode.control != instruction.opcode.control:
                    raise RewriteError(
                        f"{routine.name!r}: replacement at index {index} "
                        f"changes control behaviour"
                    )
                survivors.append((index, replacement))
            else:
                survivors.append((index, instruction))
        if not survivors:
            raise RewriteError(f"{routine.name!r}: all instructions deleted")
        kept[routine.name] = survivors
        new_address[routine.name] = cursor
        cursor += len(survivors) * INSTRUCTION_SIZE

    # Old instruction address -> new instruction address.  Deleted
    # instructions map to the next survivor (branch targets slide down).
    address_map: Dict[int, int] = {}
    for routine in ordered:
        survivors = kept[routine.name]
        base = new_address[routine.name]
        survivor_positions = {
            old_index: base + slot * INSTRUCTION_SIZE
            for slot, (old_index, _instruction) in enumerate(survivors)
        }
        survivor_indices = [old_index for old_index, _ in survivors]
        cursor_slot = 0
        for old_index in range(len(routine.instructions)):
            while (
                cursor_slot < len(survivor_indices)
                and survivor_indices[cursor_slot] < old_index
            ):
                cursor_slot += 1
            if cursor_slot < len(survivor_indices):
                mapped = base + cursor_slot * INSTRUCTION_SIZE
            else:
                # Deleted trailing instruction: impossible, the last
                # instruction is a control instruction and cannot be
                # deleted; defend anyway.
                mapped = base + (len(survivors) - 1) * INSTRUCTION_SIZE
            if old_index in survivor_positions:
                mapped = survivor_positions[old_index]
            address_map[routine.address_of(old_index)] = mapped

    old_entries = {routine.address: routine.name for routine in ordered}

    # ------------------------------------------------------------------
    # 2. Re-emit instructions with fixed-up displacements.
    # ------------------------------------------------------------------
    new_routines: List[Routine] = []
    for routine in ordered:
        survivors = kept[routine.name]
        base = new_address[routine.name]
        body: List[Instruction] = []
        for slot, (old_index, instruction) in enumerate(survivors):
            control = instruction.opcode.control
            if control in (
                ControlKind.COND_BRANCH,
                ControlKind.UNCOND_BRANCH,
                ControlKind.CALL_DIRECT,
            ):
                old_target = routine.address_of(old_index) + INSTRUCTION_SIZE * (
                    1 + instruction.displacement
                )
                new_target = address_map.get(old_target)
                if new_target is None:
                    raise RewriteError(
                        f"{routine.name!r}: branch target {old_target:#x} "
                        f"is not a known instruction"
                    )
                new_pc = base + slot * INSTRUCTION_SIZE
                displacement = (new_target - new_pc - INSTRUCTION_SIZE) // (
                    INSTRUCTION_SIZE
                )
                instruction = dataclass_replace(
                    instruction, displacement=displacement
                )
            body.append(instruction)
        _repair_address_chains(routine.name, body, old_entries, new_address)
        new_routines.append(
            Routine(
                name=routine.name,
                address=base,
                instructions=body,
                exported=routine.exported,
            )
        )

    # ------------------------------------------------------------------
    # 3. Patch jump tables (data addresses do not move).
    # ------------------------------------------------------------------
    data = bytearray(program.data)
    new_jump_targets: Dict[int, Tuple[int, ...]] = {}
    new_locations: Dict[int, int] = {}
    for old_jump_address, targets in program.jump_targets.items():
        location = program.jump_table_locations.get(old_jump_address)
        if location is None:
            raise RewriteError(
                f"cannot rewrite: jump table for {old_jump_address:#x} has "
                f"no recorded data location"
            )
        new_targets = []
        for target in targets:
            mapped = address_map.get(target)
            if mapped is None:
                raise RewriteError(
                    f"jump-table target {target:#x} is not a known instruction"
                )
            new_targets.append(mapped)
        offset = location - program.data_base
        for i, target in enumerate(new_targets):
            data[offset + 8 * i : offset + 8 * (i + 1)] = target.to_bytes(
                8, "little"
            )
        new_jump = address_map[old_jump_address]
        new_jump_targets[new_jump] = tuple(new_targets)
        new_locations[new_jump] = location

    # ------------------------------------------------------------------
    # 4. Relocate function-pointer words in the data section.
    # ------------------------------------------------------------------
    for relocation in program.data_relocations:
        offset = relocation - program.data_base
        if offset < 0 or offset + 8 > len(data):
            raise RewriteError(
                f"data relocation {relocation:#x} outside data section"
            )
        pointer = int.from_bytes(data[offset : offset + 8], "little")
        mapped = address_map.get(pointer)
        if mapped is None:
            raise RewriteError(
                f"data relocation at {relocation:#x} holds {pointer:#x}, "
                f"not a known instruction address"
            )
        data[offset : offset + 8] = mapped.to_bytes(8, "little")

    # ------------------------------------------------------------------
    # 5. Re-address the linker call-target hints.
    # ------------------------------------------------------------------
    new_hints: Dict[int, Tuple[int, ...]] = {}
    for call_address, hint_targets in program.call_target_hints.items():
        mapped_call = address_map.get(call_address)
        if mapped_call is None:
            raise RewriteError(
                f"call-target hint owner {call_address:#x} is not a known "
                f"instruction"
            )
        new_hints[mapped_call] = tuple(
            address_map[target] for target in hint_targets
        )

    return Program(
        routines=new_routines,
        entry=program.entry,
        jump_targets=new_jump_targets,
        data=bytes(data),
        data_base=program.data_base,
        jump_table_locations=new_locations,
        data_relocations=list(program.data_relocations),
        call_target_hints=new_hints,
    )


def _repair_address_chains(
    name: str,
    body: List[Instruction],
    old_entries: Dict[int, str],
    new_address: Dict[str, int],
) -> None:
    """Re-split ``ldah``/``lda`` pairs that materialize routine addresses.

    The assembler materializes every code address as an adjacent

    .. code-block:: none

        ldah rd, high(zero)
        lda  rd, low(rd)

    pair (routine entries start at 0x10000, above the single-``lda``
    range, so no other shape can produce one).  This pass finds exactly
    that shape, checks the pair's value against the *old* routine entry
    table, and rewrites both displacements for the routine's new
    address.  Matching the precise shape avoids false positives on
    intermediate ``ldah`` values that coincidentally equal some entry.
    """
    for index in range(len(body) - 1):
        high = body[index]
        low = body[index + 1]
        if high.opcode is not Opcode.LDAH or high.rb != ZERO_REGISTER:
            continue
        if (
            low.opcode is not Opcode.LDA
            or low.rb != high.ra
            or low.ra != high.ra
        ):
            continue
        value = (high.displacement << 16) + low.displacement
        routine_name = old_entries.get(value)
        if routine_name is None:
            continue
        target = new_address[routine_name]
        new_low = target & 0xFFFF
        if new_low >= 0x8000:
            new_low -= 0x10000
        new_high = (target - new_low) >> 16
        if not -0x8000 <= new_high <= 0x7FFF:
            raise RewriteError(f"{name!r}: address {target:#x} out of range")
        body[index] = dataclass_replace(high, displacement=new_high)
        body[index + 1] = dataclass_replace(low, displacement=new_low)


def program_to_image(program: Program) -> ExecutableImage:
    """Re-serialize a program into an executable image.

    Routines must be contiguous (the assembler and the rewriter always
    produce contiguous layouts).
    """
    ordered = sorted(program.routines, key=lambda r: r.address)
    text_base = ordered[0].address
    cursor = text_base
    instructions: List[Instruction] = []
    symbols: List[Symbol] = []
    for routine in ordered:
        if routine.address != cursor:
            raise ProgramError(
                f"routine {routine.name!r} is not contiguous with the "
                f"previous routine"
            )
        instructions.extend(routine.instructions)
        symbols.append(
            Symbol(routine.name, routine.address, routine.size, routine.exported)
        )
        cursor = routine.end
    jump_tables = []
    for jump_address, targets in sorted(program.jump_targets.items()):
        location = program.jump_table_locations.get(jump_address)
        if location is None:
            raise ProgramError(
                f"jump table for {jump_address:#x} has no data location"
            )
        jump_tables.append(
            JumpTableInfo(
                jump_address=jump_address,
                table_address=location,
                count=len(targets),
            )
        )
    image = ExecutableImage(
        text=encode_stream(instructions),
        data=program.data,
        text_base=text_base,
        data_base=program.data_base,
        entry_point=program.entry_routine.address,
        symbols=symbols,
        jump_tables=jump_tables,
        data_relocations=list(program.data_relocations),
        call_target_hints=[
            CallTargetHint(call_address, targets)
            for call_address, targets in sorted(
                program.call_target_hints.items()
            )
        ],
    )
    image.validate()
    return image
