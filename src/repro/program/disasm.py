"""Disassembler / loader: lift an executable image to the program model.

This is the front half of the "CFG Build" stage the paper times: decode
the text section, carve it into routines along the symbol table, and
recover jump-table target sets from the data section.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from repro.isa.encoding import INSTRUCTION_SIZE, decode_stream
from repro.isa.instructions import ControlKind, Instruction
from repro.program.image import ExecutableImage, ImageFormatError
from repro.program.model import Program, ProgramError, Routine


def disassemble_image(image: ExecutableImage) -> Program:
    """Decode ``image`` into a :class:`~repro.program.model.Program`."""
    image.validate()
    instructions = decode_stream(image.text)
    routines: List[Routine] = []
    for symbol in sorted(image.symbols, key=lambda s: s.address):
        start = (symbol.address - image.text_base) // INSTRUCTION_SIZE
        count = symbol.size // INSTRUCTION_SIZE
        body = instructions[start : start + count]
        if len(body) != count:
            raise ImageFormatError(
                f"symbol {symbol.name!r} extends past the text section"
            )
        routines.append(
            Routine(symbol.name, symbol.address, body, exported=symbol.exported)
        )
    entry_symbol = image.symbol_at(image.entry_point)
    if entry_symbol is None:
        raise ImageFormatError(
            f"entry point {image.entry_point:#x} is not a routine entry"
        )
    jump_targets: Dict[int, Tuple[int, ...]] = {
        info.jump_address: image.read_jump_table(info)
        for info in image.jump_tables
    }
    jump_table_locations = {
        info.jump_address: info.table_address for info in image.jump_tables
    }
    return Program(
        routines=routines,
        entry=entry_symbol.name,
        jump_targets=jump_targets,
        data=image.data,
        data_base=image.data_base,
        jump_table_locations=jump_table_locations,
        data_relocations=list(image.data_relocations),
        call_target_hints={
            hint.call_address: hint.targets
            for hint in image.call_target_hints
        },
    )


def load_program(blob: bytes) -> Program:
    """Parse serialized image bytes and lift them to a program."""
    return disassemble_image(ExecutableImage.from_bytes(blob))


def render_listing(program: Program) -> str:
    """A human-readable disassembly listing of ``program``.

    Branch targets are annotated with synthesized local labels, direct
    call targets with routine names, and jump-table jumps with their
    recovered target lists.
    """
    lines: List[str] = []
    for routine in program:
        # Collect local branch targets so we can print labels.
        targets: Dict[int, str] = {}
        for index, instruction in enumerate(routine.instructions):
            if instruction.opcode.control in (
                ControlKind.COND_BRANCH,
                ControlKind.UNCOND_BRANCH,
            ):
                target = routine.address_of(index) + INSTRUCTION_SIZE * (
                    1 + instruction.displacement
                )
                if routine.contains(target) and target not in targets:
                    targets[target] = f"L{len(targets)}"
        for jump_address, jump_targets in sorted(program.jump_targets.items()):
            if routine.contains(jump_address):
                for target in jump_targets:
                    if target not in targets:
                        targets[target] = f"L{len(targets)}"
        flags = " export" if routine.exported else ""
        lines.append(f"{routine.name}:{flags}    ; {routine.address:#x}")
        for index, instruction in enumerate(routine.instructions):
            address = routine.address_of(index)
            if address in targets:
                lines.append(f"{targets[address]}:")
            text = _render_instruction(program, routine, index, instruction, targets)
            lines.append(f"    {address:#010x}  {text}")
        lines.append("")
    return "\n".join(lines)


def _render_instruction(
    program: Program,
    routine: Routine,
    index: int,
    instruction: Instruction,
    targets: Dict[int, str],
) -> str:
    control = instruction.opcode.control
    address = routine.address_of(index)
    if control in (ControlKind.COND_BRANCH, ControlKind.UNCOND_BRANCH):
        target = address + INSTRUCTION_SIZE * (1 + instruction.displacement)
        label = targets.get(target, f"{target:#x}")
        base = instruction.render()
        return f"{base}    ; -> {label}"
    if control == ControlKind.CALL_DIRECT:
        target = address + INSTRUCTION_SIZE * (1 + instruction.displacement)
        callee = program.routine_at(target)
        name = callee.name if callee else f"{target:#x}"
        return f"{instruction.render()}    ; calls {name}"
    if control == ControlKind.INDIRECT_JUMP and address in program.jump_targets:
        labels = ", ".join(
            targets.get(t, f"{t:#x}") for t in program.jump_targets[address]
        )
        return f"{instruction.render()}    ; table: {labels}"
    return instruction.render()
