"""The decoded program model.

After loading an executable image, the analysis works on a
:class:`Program`: a collection of :class:`Routine` objects (the paper's
"routines": instruction sequences generated for high-level procedures,
with a single entry and one or more exits), plus the interprocedural
facts recovered from the image — jump-table target sets and the export
list.

Addresses are byte addresses in the image's address space; every
instruction occupies 4 bytes.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Sequence, Tuple

from repro.isa.encoding import INSTRUCTION_SIZE
from repro.isa.instructions import Instruction


class ProgramError(ValueError):
    """Raised for structurally invalid programs."""


@dataclass
class Routine:
    """A routine: a named, contiguous sequence of instructions.

    ``instructions[i]`` lives at ``address + 4 * i``.
    """

    name: str
    address: int
    instructions: List[Instruction]
    exported: bool = False

    def __post_init__(self) -> None:
        if not self.instructions:
            raise ProgramError(f"routine {self.name!r} has no instructions")
        if self.address % INSTRUCTION_SIZE:
            raise ProgramError(
                f"routine {self.name!r} at unaligned address {self.address:#x}"
            )

    @property
    def size(self) -> int:
        """Code size in bytes."""
        return len(self.instructions) * INSTRUCTION_SIZE

    @property
    def end(self) -> int:
        """One past the last code byte."""
        return self.address + self.size

    def address_of(self, index: int) -> int:
        """Address of ``instructions[index]``."""
        if not 0 <= index < len(self.instructions):
            raise IndexError(index)
        return self.address + index * INSTRUCTION_SIZE

    def index_of(self, address: int) -> int:
        """Instruction index at ``address`` within this routine."""
        offset = address - self.address
        if offset < 0 or offset >= self.size or offset % INSTRUCTION_SIZE:
            raise ProgramError(
                f"address {address:#x} is not an instruction of {self.name!r}"
            )
        return offset // INSTRUCTION_SIZE

    def contains(self, address: int) -> bool:
        """True when ``address`` is inside this routine's code."""
        return self.address <= address < self.end

    def __len__(self) -> int:
        return len(self.instructions)

    def __iter__(self) -> Iterator[Instruction]:
        return iter(self.instructions)


@dataclass
class Program:
    """A whole decoded program.

    ``jump_targets`` maps the address of each indirect ``jmp`` with a
    recovered jump table to the tuple of its target addresses; indirect
    jumps absent from the map have *unknown* targets and are treated
    conservatively (§3.5).
    """

    routines: List[Routine]
    entry: str
    jump_targets: Dict[int, Tuple[int, ...]] = field(default_factory=dict)
    data: bytes = b""
    data_base: int = 0
    #: jmp instruction address -> address of its table in the data
    #: section (kept so the binary rewriter can patch table entries).
    jump_table_locations: Dict[int, int] = field(default_factory=dict)
    #: data-section addresses of 8-byte words holding code addresses
    #: (function-pointer tables); the rewriter relocates them.
    data_relocations: List[int] = field(default_factory=list)
    #: jsr instruction address -> tuple of possible target entry
    #: addresses (linker-provided §3.5 hints).
    call_target_hints: Dict[int, Tuple[int, ...]] = field(default_factory=dict)

    def __post_init__(self) -> None:
        self._by_name: Dict[str, Routine] = {}
        for routine in self.routines:
            if routine.name in self._by_name:
                raise ProgramError(f"duplicate routine name {routine.name!r}")
            self._by_name[routine.name] = routine
        ordered = sorted(self.routines, key=lambda r: r.address)
        for before, after in zip(ordered, ordered[1:]):
            if after.address < before.end:
                raise ProgramError(
                    f"routines {before.name!r} and {after.name!r} overlap"
                )
        self._by_entry: Dict[int, Routine] = {
            routine.address: routine for routine in self.routines
        }
        self._ordered: List[Routine] = ordered
        if self.entry not in self._by_name:
            raise ProgramError(f"entry routine {self.entry!r} not present")

    # ------------------------------------------------------------------
    # Lookup
    # ------------------------------------------------------------------

    def routine(self, name: str) -> Routine:
        """The routine called ``name``."""
        try:
            return self._by_name[name]
        except KeyError:
            raise ProgramError(f"no routine named {name!r}") from None

    def routine_names(self) -> List[str]:
        """All routine names, in address order."""
        return [routine.name for routine in self._ordered]

    @property
    def entry_routine(self) -> Routine:
        """The program's entry routine."""
        return self._by_name[self.entry]

    def routine_at(self, address: int) -> Optional[Routine]:
        """The routine whose *entry* is at ``address``, if any."""
        return self._by_entry.get(address)

    def routine_containing(self, address: int) -> Optional[Routine]:
        """The routine whose code contains ``address``, if any."""
        low, high = 0, len(self._ordered) - 1
        while low <= high:
            mid = (low + high) // 2
            routine = self._ordered[mid]
            if address < routine.address:
                high = mid - 1
            elif address >= routine.end:
                low = mid + 1
            else:
                return routine
        return None

    def instruction_at(self, address: int) -> Tuple[Routine, int]:
        """The (routine, index) of the instruction at ``address``."""
        routine = self.routine_containing(address)
        if routine is None:
            raise ProgramError(f"address {address:#x} is not in any routine")
        return routine, routine.index_of(address)

    # ------------------------------------------------------------------
    # Statistics (the units the paper's tables report)
    # ------------------------------------------------------------------

    @property
    def routine_count(self) -> int:
        return len(self.routines)

    @property
    def instruction_count(self) -> int:
        return sum(len(routine) for routine in self.routines)

    def exported_routines(self) -> List[Routine]:
        """Routines callable from outside the image."""
        return [routine for routine in self._ordered if routine.exported]

    def __iter__(self) -> Iterator[Routine]:
        return iter(self._ordered)


def check_single_entry(program: Program) -> None:
    """Validate the paper's routine model: no branch in one routine may
    target the middle of another routine (routines have a single entry).

    Raises :class:`ProgramError` on violation.  Call targets (BSR) must be
    routine entry addresses.
    """
    entries = {routine.address for routine in program.routines}
    for routine in program:
        for index, instruction in enumerate(routine.instructions):
            control = instruction.opcode.control
            if control.name in ("COND_BRANCH", "UNCOND_BRANCH"):
                target = (
                    routine.address_of(index)
                    + INSTRUCTION_SIZE
                    + instruction.displacement * INSTRUCTION_SIZE
                )
                if not routine.contains(target):
                    raise ProgramError(
                        f"{routine.name!r}: branch at {routine.address_of(index):#x} "
                        f"targets {target:#x} outside the routine"
                    )
            elif control.name == "CALL_DIRECT":
                target = (
                    routine.address_of(index)
                    + INSTRUCTION_SIZE
                    + instruction.displacement * INSTRUCTION_SIZE
                )
                if target not in entries:
                    raise ProgramError(
                        f"{routine.name!r}: call at {routine.address_of(index):#x} "
                        f"targets {target:#x}, not a routine entry"
                    )
    for jump_address, targets in program.jump_targets.items():
        owner = program.routine_containing(jump_address)
        if owner is None:
            raise ProgramError(f"jump table owner {jump_address:#x} not in code")
        for target in targets:
            if not owner.contains(target):
                raise ProgramError(
                    f"{owner.name!r}: jump table at {jump_address:#x} has target "
                    f"{target:#x} outside the routine"
                )


def program_statistics(program: Program) -> Dict[str, float]:
    """Whole-program statistics in the units of Table 2/3.

    Returns routine count, instruction count and per-routine averages of
    calls and conditional branches (block counts come from the CFG layer).
    """
    calls = 0
    branches = 0
    for routine in program:
        for instruction in routine:
            if instruction.is_call:
                calls += 1
            elif instruction.opcode.control.name == "COND_BRANCH":
                branches += 1
            elif instruction.opcode.control.name == "INDIRECT_JUMP":
                branches += 1
    count = max(program.routine_count, 1)
    return {
        "routines": float(program.routine_count),
        "instructions": float(program.instruction_count),
        "calls_per_routine": calls / count,
        "branches_per_routine": branches / count,
    }
