"""The SAX ("Simple Alpha eXecutable") image format.

A SAX image is what our stand-in linker produces and what the analysis
consumes, playing the role of the Alpha/NT PE executables Spike operates
on.  An image holds:

* a **text section**: contiguous 32-bit instruction words at
  ``text_base``;
* a **data section**: raw bytes at ``data_base`` (jump tables and
  program data);
* a **symbol table**: one entry per routine giving its name, entry
  address and size in bytes;
* **jump-table metadata**: for each indirect ``jmp`` whose target set is
  known to the linker, the address of its jump table in the data section
  and the number of entries (§3.5 of the paper: "Spike extracts the
  jump-table stored with the program");
* an **export list**: routines callable from outside the image, which
  must therefore be analyzed under worst-case assumptions about their
  callers;
* the **entry point** address.

The binary serialization is a small sectioned format with a magic number
and explicit lengths; it exists so that the "post-link" pipeline is real:
programs round-trip through bytes before being analyzed.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

MAGIC = b"SAX1"

#: Default load address of the text section.
DEFAULT_TEXT_BASE = 0x0001_0000

#: Default load address of the data section.
DEFAULT_DATA_BASE = 0x0040_0000

#: Size in bytes of a jump-table entry (a 64-bit code address).
JUMP_TABLE_ENTRY_SIZE = 8

_HEADER = struct.Struct("<4sIQQQIIIIII")
_HINT_FIXED = struct.Struct("<QI")
_SYMBOL_FIXED = struct.Struct("<QQB")
_JUMP_TABLE = struct.Struct("<QQI")
_U16 = struct.Struct("<H")
_U64 = struct.Struct("<Q")


class ImageFormatError(ValueError):
    """Raised for malformed or inconsistent executable images."""


@dataclass(frozen=True)
class Symbol:
    """A routine symbol: name, entry address and code size in bytes."""

    name: str
    address: int
    size: int
    exported: bool = False

    def __post_init__(self) -> None:
        if not self.name:
            raise ImageFormatError("symbol with empty name")
        if self.address < 0 or self.size < 0:
            raise ImageFormatError(f"symbol {self.name!r} has negative fields")
        if self.size % 4:
            raise ImageFormatError(
                f"symbol {self.name!r} size {self.size} not word aligned"
            )

    @property
    def end(self) -> int:
        """One past the last byte of the routine's code."""
        return self.address + self.size


@dataclass(frozen=True)
class CallTargetHint:
    """Linker-provided target set for one indirect call (§3.5).

    The paper notes that "dataflow accuracy can be improved if
    additional information is provided to Spike by the compiler or
    linker" about indirect calls.  A hint lists every routine entry a
    ``jsr`` at ``call_address`` can reach (a virtual dispatch's
    implementations, a callback table's members); the analysis then
    combines those callees' summaries instead of assuming the
    worst-case calling standard.
    """

    call_address: int
    targets: Tuple[int, ...]

    def __post_init__(self) -> None:
        if not self.targets:
            raise ImageFormatError(
                f"call-target hint at {self.call_address:#x} has no targets"
            )


@dataclass(frozen=True)
class JumpTableInfo:
    """Linker metadata tying an indirect jump to its table.

    ``jump_address`` is the address of the ``jmp`` instruction;
    ``table_address`` is the address (in the data section) of an array of
    ``count`` 64-bit code addresses.
    """

    jump_address: int
    table_address: int
    count: int

    def __post_init__(self) -> None:
        if self.count <= 0:
            raise ImageFormatError(
                f"jump table at {self.table_address:#x} has count {self.count}"
            )


@dataclass
class ExecutableImage:
    """A loaded (or about-to-be-serialized) SAX executable."""

    text: bytes
    data: bytes = b""
    text_base: int = DEFAULT_TEXT_BASE
    data_base: int = DEFAULT_DATA_BASE
    entry_point: int = DEFAULT_TEXT_BASE
    symbols: List[Symbol] = field(default_factory=list)
    jump_tables: List[JumpTableInfo] = field(default_factory=list)
    #: Addresses (in the data section) of 8-byte words holding code
    #: addresses — function-pointer tables, vtables.  The linker records
    #: them so a rewriter can relocate the pointers when code moves.
    data_relocations: List[int] = field(default_factory=list)
    #: Linker-provided target sets for indirect calls (§3.5).
    call_target_hints: List[CallTargetHint] = field(default_factory=list)

    # ------------------------------------------------------------------
    # Validation and lookup helpers
    # ------------------------------------------------------------------

    def validate(self) -> None:
        """Check internal consistency; raise :class:`ImageFormatError`."""
        if len(self.text) % 4:
            raise ImageFormatError("text section not word aligned")
        text_end = self.text_base + len(self.text)
        seen: Dict[str, Symbol] = {}
        previous_end = self.text_base
        for symbol in sorted(self.symbols, key=lambda s: s.address):
            if symbol.name in seen:
                raise ImageFormatError(f"duplicate symbol {symbol.name!r}")
            seen[symbol.name] = symbol
            if symbol.address < self.text_base or symbol.end > text_end:
                raise ImageFormatError(
                    f"symbol {symbol.name!r} [{symbol.address:#x}, {symbol.end:#x}) "
                    f"outside text [{self.text_base:#x}, {text_end:#x})"
                )
            if symbol.address < previous_end:
                raise ImageFormatError(
                    f"symbol {symbol.name!r} overlaps the previous routine"
                )
            previous_end = symbol.end
        if self.symbols and not any(
            s.address <= self.entry_point < s.end for s in self.symbols
        ):
            raise ImageFormatError(
                f"entry point {self.entry_point:#x} not inside any routine"
            )
        data_end = self.data_base + len(self.data)
        for table in self.jump_tables:
            table_end = table.table_address + table.count * JUMP_TABLE_ENTRY_SIZE
            if table.table_address < self.data_base or table_end > data_end:
                raise ImageFormatError(
                    f"jump table [{table.table_address:#x}, {table_end:#x}) "
                    f"outside data [{self.data_base:#x}, {data_end:#x})"
                )
            if not self.text_base <= table.jump_address < text_end:
                raise ImageFormatError(
                    f"jump-table owner {table.jump_address:#x} outside text"
                )
        for relocation in self.data_relocations:
            if not self.data_base <= relocation <= data_end - 8:
                raise ImageFormatError(
                    f"data relocation {relocation:#x} outside data section"
                )
        for hint in self.call_target_hints:
            if not self.text_base <= hint.call_address < text_end:
                raise ImageFormatError(
                    f"call-target hint owner {hint.call_address:#x} outside text"
                )
            for target in hint.targets:
                if self.symbols and self.symbol_at(target) is None:
                    raise ImageFormatError(
                        f"call-target hint at {hint.call_address:#x} targets "
                        f"{target:#x}, not a routine entry"
                    )

    def symbol_by_name(self, name: str) -> Symbol:
        """The symbol called ``name`` (raises :class:`KeyError`)."""
        for symbol in self.symbols:
            if symbol.name == name:
                return symbol
        raise KeyError(name)

    def symbol_at(self, address: int) -> Optional[Symbol]:
        """The symbol whose entry address is exactly ``address``."""
        for symbol in self.symbols:
            if symbol.address == address:
                return symbol
        return None

    def read_jump_table(self, info: JumpTableInfo) -> Tuple[int, ...]:
        """Extract the code addresses stored in a jump table."""
        offset = info.table_address - self.data_base
        if offset < 0 or offset + info.count * JUMP_TABLE_ENTRY_SIZE > len(self.data):
            raise ImageFormatError(
                f"jump table at {info.table_address:#x} outside data section"
            )
        return tuple(
            _U64.unpack_from(self.data, offset + i * JUMP_TABLE_ENTRY_SIZE)[0]
            for i in range(info.count)
        )

    def jump_table_for(self, jump_address: int) -> Optional[JumpTableInfo]:
        """Jump-table metadata for the ``jmp`` at ``jump_address``, if any."""
        for table in self.jump_tables:
            if table.jump_address == jump_address:
                return table
        return None

    @property
    def instruction_count(self) -> int:
        """Number of instruction words in the text section."""
        return len(self.text) // 4

    # ------------------------------------------------------------------
    # Serialization
    # ------------------------------------------------------------------

    def to_bytes(self) -> bytes:
        """Serialize the image to its binary form."""
        self.validate()
        parts: List[bytes] = []
        symbol_blob = bytearray()
        for symbol in self.symbols:
            encoded = symbol.name.encode("utf-8")
            symbol_blob += _SYMBOL_FIXED.pack(
                symbol.address, symbol.size, 1 if symbol.exported else 0
            )
            symbol_blob += _U16.pack(len(encoded))
            symbol_blob += encoded
        table_blob = bytearray()
        for table in self.jump_tables:
            table_blob += _JUMP_TABLE.pack(
                table.jump_address, table.table_address, table.count
            )
        relocation_blob = bytearray()
        for relocation in self.data_relocations:
            relocation_blob += _U64.pack(relocation)
        hint_blob = bytearray()
        for hint in self.call_target_hints:
            hint_blob += _HINT_FIXED.pack(hint.call_address, len(hint.targets))
            for target in hint.targets:
                hint_blob += _U64.pack(target)
        header = _HEADER.pack(
            MAGIC,
            1,  # version
            self.text_base,
            self.data_base,
            self.entry_point,
            len(self.text),
            len(self.data),
            len(self.symbols),
            len(self.jump_tables),
            len(self.data_relocations),
            len(self.call_target_hints),
        )
        parts.append(header)
        parts.append(self.text)
        parts.append(self.data)
        parts.append(bytes(symbol_blob))
        parts.append(bytes(table_blob))
        parts.append(bytes(relocation_blob))
        parts.append(bytes(hint_blob))
        return b"".join(parts)

    @classmethod
    def from_bytes(cls, blob: bytes) -> "ExecutableImage":
        """Parse a serialized image; raises :class:`ImageFormatError`."""
        if len(blob) < _HEADER.size:
            raise ImageFormatError("image too short for header")
        (
            magic,
            version,
            text_base,
            data_base,
            entry_point,
            text_size,
            data_size,
            symbol_count,
            table_count,
            relocation_count,
            hint_count,
        ) = _HEADER.unpack_from(blob, 0)
        if magic != MAGIC:
            raise ImageFormatError(f"bad magic {magic!r}")
        if version != 1:
            raise ImageFormatError(f"unsupported version {version}")
        offset = _HEADER.size
        if offset + text_size + data_size > len(blob):
            raise ImageFormatError("sections extend past end of image")
        text = blob[offset : offset + text_size]
        offset += text_size
        data = blob[offset : offset + data_size]
        offset += data_size
        symbols: List[Symbol] = []
        for _ in range(symbol_count):
            if offset + _SYMBOL_FIXED.size + _U16.size > len(blob):
                raise ImageFormatError("truncated symbol table")
            address, size, exported = _SYMBOL_FIXED.unpack_from(blob, offset)
            offset += _SYMBOL_FIXED.size
            (name_length,) = _U16.unpack_from(blob, offset)
            offset += _U16.size
            if offset + name_length > len(blob):
                raise ImageFormatError("truncated symbol name")
            name = blob[offset : offset + name_length].decode("utf-8")
            offset += name_length
            symbols.append(Symbol(name, address, size, bool(exported)))
        jump_tables: List[JumpTableInfo] = []
        for _ in range(table_count):
            if offset + _JUMP_TABLE.size > len(blob):
                raise ImageFormatError("truncated jump-table metadata")
            jump_address, table_address, count = _JUMP_TABLE.unpack_from(blob, offset)
            offset += _JUMP_TABLE.size
            jump_tables.append(JumpTableInfo(jump_address, table_address, count))
        data_relocations: List[int] = []
        for _ in range(relocation_count):
            if offset + _U64.size > len(blob):
                raise ImageFormatError("truncated data relocations")
            (relocation,) = _U64.unpack_from(blob, offset)
            offset += _U64.size
            data_relocations.append(relocation)
        call_target_hints: List[CallTargetHint] = []
        for _ in range(hint_count):
            if offset + _HINT_FIXED.size > len(blob):
                raise ImageFormatError("truncated call-target hints")
            call_address, target_count = _HINT_FIXED.unpack_from(blob, offset)
            offset += _HINT_FIXED.size
            if offset + 8 * target_count > len(blob):
                raise ImageFormatError("truncated call-target hint targets")
            targets = tuple(
                _U64.unpack_from(blob, offset + 8 * i)[0]
                for i in range(target_count)
            )
            offset += 8 * target_count
            call_target_hints.append(CallTargetHint(call_address, targets))
        image = cls(
            text=text,
            data=data,
            text_base=text_base,
            data_base=data_base,
            entry_point=entry_point,
            symbols=symbols,
            jump_tables=jump_tables,
            data_relocations=data_relocations,
            call_target_hints=call_target_hints,
        )
        image.validate()
        return image


def pack_jump_table(targets: Sequence[int]) -> bytes:
    """Encode jump-table targets as data-section bytes."""
    return b"".join(_U64.pack(t) for t in targets)
