"""Executable images and the post-link program model.

Spike is a *post-link-time* optimizer: its input is a fully linked
executable.  This subpackage provides the equivalent substrate for the
reproduction:

* :mod:`repro.program.image` — a simple binary executable format
  ("SAX", Simple Alpha eXecutable) with text and data sections, a symbol
  table, jump-table metadata and an export list, serializable to and
  from bytes;
* :mod:`repro.program.asm` — an assembler with both a programmatic API
  and a text syntax, producing executable images;
* :mod:`repro.program.model` — the decoded program model
  (:class:`Program` / :class:`Routine`) the analyses operate on;
* :mod:`repro.program.disasm` — the disassembler/loader that lifts an
  image back into the program model, and a listing renderer.
"""

from repro.program.image import (
    CallTargetHint,
    ExecutableImage,
    ImageFormatError,
    JumpTableInfo,
    Symbol,
)
from repro.program.model import Program, ProgramError, Routine
from repro.program.asm import Assembler, AssemblyError, assemble
from repro.program.linker import LinkError, ObjectModule, link_modules
from repro.program.disasm import disassemble_image, load_program, render_listing

__all__ = [
    "Assembler",
    "AssemblyError",
    "CallTargetHint",
    "ExecutableImage",
    "ImageFormatError",
    "JumpTableInfo",
    "LinkError",
    "ObjectModule",
    "Program",
    "ProgramError",
    "Routine",
    "Symbol",
    "assemble",
    "disassemble_image",
    "link_modules",
    "load_program",
    "render_listing",
]
