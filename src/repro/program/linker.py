"""A linker: combine separately assembled modules into one executable.

Spike is a *post-link-time* optimizer precisely because interprocedural
facts only exist once separately compiled modules are combined — the
paper's Figure 1 stresses that "the calling procedure and the called
procedure may be in separately compiled modules".  This module supplies
that missing toolchain step for the reproduction: assemble modules
independently, with **unresolved external references**, then link them
into a single SAX image.

A module is written exactly like a standalone program, plus:

* ``asm.extern("name")`` declares an external routine — ``bsr``,
  ``li rd, &name`` and pointer tables may reference it, and the linker
  resolves it against another module's definition;
* every routine a module defines is visible to the other modules
  (there is no static/local distinction — the 1990s linkers Spike sat
  behind exported everything into the image's symbol table anyway).

The linker lays modules out in order, merges their data sections
(rebasing each module's data labels), resolves externals, and emits one
image through the normal :class:`~repro.program.asm.Assembler`
machinery — so jump tables, data relocations and call-target hints all
survive linking.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.program.asm import Assembler, AssemblyError
from repro.program.image import DEFAULT_DATA_BASE, DEFAULT_TEXT_BASE, ExecutableImage


class LinkError(AssemblyError):
    """Raised for unresolved or multiply-defined symbols."""


class ObjectModule(Assembler):
    """An assembler that may reference external routines.

    Use exactly like :class:`~repro.program.asm.Assembler`, but
    ``extern`` names may be used as ``bsr`` targets, ``li`` operands,
    pointer-table members and hint targets.  ``build()`` is disabled —
    an object module only becomes executable by linking.
    """

    def __init__(self, name: str = "module") -> None:
        super().__init__()
        self.module_name = name
        self._externals: Set[str] = set()

    def extern(self, name: str) -> "ObjectModule":
        """Declare ``name`` as defined in some other module."""
        self._externals.add(name)
        return self

    @property
    def externals(self) -> Set[str]:
        return set(self._externals)

    def defined_routines(self) -> List[str]:
        return [record.name for record in self._routines]

    def build(self, entry: Optional[str] = None) -> ExecutableImage:
        raise LinkError(
            f"module {self.module_name!r} cannot build standalone; "
            f"link it (repro.program.linker.link_modules)"
        )


def link_modules(
    modules: Sequence[ObjectModule],
    entry: str,
    text_base: int = DEFAULT_TEXT_BASE,
    data_base: int = DEFAULT_DATA_BASE,
) -> ExecutableImage:
    """Link object modules into one executable image.

    Checks that every external reference has exactly one definition and
    that no routine is defined twice, then concatenates the modules
    (code and data) into a single resolution pass.
    """
    if not modules:
        raise LinkError("nothing to link")

    defined: Dict[str, str] = {}
    for module in modules:
        for name in module.defined_routines():
            if name in defined:
                raise LinkError(
                    f"routine {name!r} defined in both {defined[name]!r} "
                    f"and {module.module_name!r}"
                )
            defined[name] = module.module_name
    for module in modules:
        for name in module.externals:
            if name not in defined:
                raise LinkError(
                    f"module {module.module_name!r}: unresolved external "
                    f"{name!r}"
                )
    if entry not in defined:
        raise LinkError(f"entry routine {entry!r} is not defined")

    # Merge into one resolving assembler.  Data labels are prefixed per
    # module so modules may reuse label names; code references to data
    # labels are rewritten with the same prefix.  Routine names form the
    # global namespace (checked above).
    linked = Assembler(text_base=text_base, data_base=data_base)

    for module in modules:
        prefix = f"{module.module_name}."
        base = len(linked._data)
        linked._data += module._data
        for label, offset in module._data_labels.items():
            linked._data_labels[prefix + label] = base + offset
        for offset, routine_name in module._data_pointers:
            linked._data_pointers.append((base + offset, routine_name))

    slot_shift = 0
    for module in modules:
        prefix = f"{module.module_name}."
        # Routine records (close the module's last routine first).
        records = list(module._routines)
        if records:
            records[-1].end_slot = (
                records[-1].end_slot
                if records[-1].end_slot >= 0
                else len(module._slots)
            )
        for record in records:
            end = record.end_slot if record.end_slot >= 0 else len(module._slots)
            linked._routines.append(
                type(record)(
                    name=record.name,
                    exported=record.exported,
                    start_slot=record.start_slot + slot_shift,
                    end_slot=end + slot_shift,
                )
            )
        for key, slot in module._labels.items():
            linked._labels[key] = slot + slot_shift
        for slot in module._slots:
            adjusted = slot
            if slot.kind in ("li_high", "li_low") and slot.label == "data":
                adjusted = type(slot)(
                    kind=slot.kind,
                    instruction=slot.instruction,
                    mnemonic=slot.mnemonic,
                    ra=slot.ra,
                    rb=slot.rb,
                    label=slot.label,
                    symbol=prefix + slot.symbol,
                    table=slot.table,
                )
            linked._slots.append(adjusted)
        for table_name, label_keys in module._jump_tables.items():
            if table_name in linked._jump_tables:
                raise LinkError(
                    f"jump table {table_name!r} defined in multiple modules"
                )
            linked._jump_tables[table_name] = list(label_keys)
        for slot_index, table_name in module._jump_sites:
            linked._jump_sites.append((slot_index + slot_shift, table_name))
        for slot_index, hint_names in module._call_hints:
            linked._call_hints.append((slot_index + slot_shift, hint_names))
        slot_shift += len(module._slots)

    return linked.build(entry=entry)
