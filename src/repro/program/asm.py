"""An assembler for the Alpha-like ISA.

The assembler offers two front ends over one resolution core:

* a **programmatic API** (:class:`Assembler`) used by the synthetic
  workload generator and by tests, with labels, symbolic call targets,
  jump tables and a ``li`` (load-immediate / load-address) pseudo-op;
* a **text syntax** (:func:`assemble`) used in examples:

  .. code-block:: none

      .routine main export
          li      t0, 10
      loop:
          subq    t0, #1, t0
          bsr     ra, helper
          bne     t0, loop
          ret     (ra)
      .routine helper
          addq    a0, #1, v0
          ret     (ra)

Both produce an :class:`~repro.program.image.ExecutableImage`; nothing
downstream of the assembler ever sees symbolic names — exactly the
situation a post-link optimizer faces.
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple, Union

from repro.isa.encoding import INSTRUCTION_SIZE, encode_stream
from repro.isa.instructions import (
    ControlKind,
    Format,
    Instruction,
    MNEMONIC_TO_OPCODE,
    Opcode,
)
from repro.isa.registers import Register, ZERO_REGISTER
from repro.program.image import (
    DEFAULT_DATA_BASE,
    DEFAULT_TEXT_BASE,
    CallTargetHint,
    ExecutableImage,
    JumpTableInfo,
    Symbol,
    pack_jump_table,
)

RegisterLike = Union[Register, str, int]


class AssemblyError(ValueError):
    """Raised for malformed assembly input."""


def _reg(value: RegisterLike) -> int:
    """Coerce a register-like value to a unified register index."""
    if isinstance(value, Register):
        return value.index
    if isinstance(value, int):
        return Register(value).index
    return Register.parse(value).index


@dataclass
class _Slot:
    """One instruction position awaiting resolution."""

    kind: str  # "insn" | "branch" | "bsr" | "li_high" | "li_low" | "jmp"
    instruction: Optional[Instruction] = None
    mnemonic: str = ""
    ra: int = ZERO_REGISTER
    rb: int = ZERO_REGISTER
    label: str = ""
    symbol: str = ""
    table: str = ""


@dataclass
class _RoutineRecord:
    name: str
    exported: bool
    start_slot: int
    end_slot: int = -1


class Assembler:
    """Incrementally build a program, then :meth:`build` an image."""

    def __init__(
        self,
        text_base: int = DEFAULT_TEXT_BASE,
        data_base: int = DEFAULT_DATA_BASE,
    ) -> None:
        self._text_base = text_base
        self._data_base = data_base
        self._slots: List[_Slot] = []
        self._routines: List[_RoutineRecord] = []
        self._labels: Dict[str, int] = {}
        self._data = bytearray()
        self._data_labels: Dict[str, int] = {}
        self._data_pointers: List[Tuple[int, str]] = []
        self._jump_tables: Dict[str, List[str]] = {}
        self._jump_sites: List[Tuple[int, str]] = []
        self._call_hints: List[Tuple[int, Tuple[str, ...]]] = []

    # ------------------------------------------------------------------
    # Structure
    # ------------------------------------------------------------------

    @property
    def current_routine(self) -> str:
        """Name of the routine currently being assembled."""
        if not self._routines:
            raise AssemblyError("no routine started")
        return self._routines[-1].name

    def routine(self, name: str, exported: bool = False) -> "Assembler":
        """Start a new routine."""
        if any(record.name == name for record in self._routines):
            raise AssemblyError(f"duplicate routine {name!r}")
        if self._routines:
            self._routines[-1].end_slot = len(self._slots)
        self._routines.append(_RoutineRecord(name, exported, len(self._slots)))
        return self

    def label(self, name: str) -> "Assembler":
        """Define a routine-local label at the next instruction."""
        key = self._label_key(name)
        if key in self._labels:
            raise AssemblyError(f"duplicate label {name!r} in {self.current_routine!r}")
        self._labels[key] = len(self._slots)
        return self

    def _label_key(self, name: str) -> str:
        return f"{self.current_routine}::{name}"

    def _require_routine(self) -> None:
        if not self._routines:
            raise AssemblyError("instruction emitted before any .routine")

    # ------------------------------------------------------------------
    # Instructions
    # ------------------------------------------------------------------

    def emit(self, instruction: Instruction) -> "Assembler":
        """Emit a fully resolved instruction."""
        self._require_routine()
        self._slots.append(_Slot("insn", instruction=instruction))
        return self

    def op(
        self,
        mnemonic: str,
        ra: RegisterLike,
        rb_or_literal: Union[RegisterLike, int],
        rc: RegisterLike,
        *,
        literal: Optional[bool] = None,
    ) -> "Assembler":
        """Emit an operate-format instruction.

        Pass ``literal=True`` to force the second operand to be an 8-bit
        literal even though it is an int (ints are otherwise register
        indices only when they are :class:`Register` or strings).
        """
        opcode = self._opcode(mnemonic)
        if opcode.format not in (Format.OPERATE, Format.OPERATE_FP):
            raise AssemblyError(f"{mnemonic} is not an operate instruction")
        if literal or (literal is None and isinstance(rb_or_literal, int)):
            instruction = Instruction(
                opcode, ra=_reg(ra), rc=_reg(rc), literal=int(rb_or_literal)
            )
        else:
            instruction = Instruction(
                opcode, ra=_reg(ra), rb=_reg(rb_or_literal), rc=_reg(rc)
            )
        return self.emit(instruction)

    def memory(
        self, mnemonic: str, ra: RegisterLike, displacement: int, rb: RegisterLike
    ) -> "Assembler":
        """Emit a memory-format instruction (``op ra, disp(rb)``)."""
        opcode = self._opcode(mnemonic)
        if opcode.format not in (Format.MEMORY, Format.MEMORY_FP):
            raise AssemblyError(f"{mnemonic} is not a memory instruction")
        return self.emit(
            Instruction(opcode, ra=_reg(ra), rb=_reg(rb), displacement=displacement)
        )

    def branch(self, mnemonic: str, ra: RegisterLike, label: str) -> "Assembler":
        """Emit a conditional branch to a routine-local label."""
        opcode = self._opcode(mnemonic)
        if opcode.control != ControlKind.COND_BRANCH:
            raise AssemblyError(f"{mnemonic} is not a conditional branch")
        self._require_routine()
        self._slots.append(
            _Slot("branch", mnemonic=mnemonic, ra=_reg(ra), label=self._label_key(label))
        )
        return self

    def br(self, label: str, ra: RegisterLike = ZERO_REGISTER) -> "Assembler":
        """Emit an unconditional branch to a routine-local label."""
        self._require_routine()
        self._slots.append(
            _Slot("branch", mnemonic="br", ra=_reg(ra), label=self._label_key(label))
        )
        return self

    def bsr(self, target: str, ra: RegisterLike = "ra") -> "Assembler":
        """Emit a direct call to routine ``target``."""
        self._require_routine()
        self._slots.append(_Slot("bsr", ra=_reg(ra), symbol=target))
        return self

    def jsr(
        self,
        rb: RegisterLike,
        ra: RegisterLike = "ra",
        hint_targets: Optional[Sequence[str]] = None,
    ) -> "Assembler":
        """Emit an indirect call through register ``rb``.

        ``hint_targets`` optionally names every routine the call can
        reach; the image then carries a §3.5 call-target hint so the
        analysis can combine those callees' summaries instead of
        assuming the full calling-standard worst case.
        """
        if hint_targets is not None:
            if not hint_targets:
                raise AssemblyError("hint_targets must not be empty")
            self._call_hints.append((len(self._slots), tuple(hint_targets)))
        return self.emit(Instruction(Opcode.JSR, ra=_reg(ra), rb=_reg(rb)))

    def ret(self, rb: RegisterLike = "ra", ra: RegisterLike = ZERO_REGISTER) -> "Assembler":
        """Emit a return through register ``rb`` (normally ``ra``)."""
        return self.emit(Instruction(Opcode.RET, ra=_reg(ra), rb=_reg(rb)))

    def jmp(
        self,
        rb: RegisterLike,
        table: Optional[str] = None,
        ra: RegisterLike = ZERO_REGISTER,
    ) -> "Assembler":
        """Emit an indirect jump.

        With ``table`` naming a jump table (see :meth:`jump_table`), the
        image will carry :class:`JumpTableInfo` tying this jump to its
        target set; without it the jump has unknown targets.
        """
        self._require_routine()
        if table is None:
            return self.emit(Instruction(Opcode.JMP, ra=_reg(ra), rb=_reg(rb)))
        slot_index = len(self._slots)
        self._slots.append(_Slot("jmp", ra=_reg(ra), rb=_reg(rb), table=table))
        self._jump_sites.append((slot_index, table))
        return self

    def jump_table(self, name: str, labels: Sequence[str]) -> "Assembler":
        """Declare jump table ``name`` targeting routine-local ``labels``.

        The table contents go into the data section at :meth:`build`
        time; the labels are resolved in the routine current *at
        declaration time*.
        """
        if name in self._jump_tables:
            raise AssemblyError(f"duplicate jump table {name!r}")
        if not labels:
            raise AssemblyError(f"jump table {name!r} is empty")
        self._require_routine()
        self._jump_tables[name] = [self._label_key(label) for label in labels]
        return self

    def li(self, rd: RegisterLike, value: Union[int, str]) -> "Assembler":
        """Load an immediate or the address of a symbol into ``rd``.

        ``value`` may be an int, ``"&name"``/plain routine name for a code
        address, or ``"@name"`` for a data label.  Integer values that fit
        a signed 16-bit immediate expand to one ``lda``; everything else
        expands to an ``ldah``/``lda`` pair.
        """
        self._require_routine()
        rd_index = _reg(rd)
        if isinstance(value, int):
            if -0x8000 <= value <= 0x7FFF:
                return self.emit(
                    Instruction(
                        Opcode.LDA, ra=rd_index, rb=ZERO_REGISTER, displacement=value
                    )
                )
            high, low = _split_address(value)
            self.emit(
                Instruction(
                    Opcode.LDAH, ra=rd_index, rb=ZERO_REGISTER, displacement=high
                )
            )
            return self.emit(
                Instruction(Opcode.LDA, ra=rd_index, rb=rd_index, displacement=low)
            )
        symbol = value.lstrip("&@")
        kind = "data" if value.startswith("@") else "code"
        self._slots.append(
            _Slot("li_high", ra=rd_index, symbol=symbol, label=kind)
        )
        self._slots.append(
            _Slot("li_low", ra=rd_index, symbol=symbol, label=kind)
        )
        return self

    def halt(self) -> "Assembler":
        """Emit the HALT PAL call."""
        return self.emit(Instruction(Opcode.HALT))

    def output(self) -> "Assembler":
        """Emit the OUTPUT PAL call (writes ``a0`` to the output stream)."""
        return self.emit(Instruction(Opcode.OUTPUT))

    # ------------------------------------------------------------------
    # Data
    # ------------------------------------------------------------------

    def data_quads(self, name: str, values: Sequence[int]) -> "Assembler":
        """Place 64-bit words in the data section under label ``name``."""
        if name in self._data_labels:
            raise AssemblyError(f"duplicate data label {name!r}")
        self._data_labels[name] = len(self._data)
        for value in values:
            self._data += (value & ((1 << 64) - 1)).to_bytes(8, "little")
        return self

    def data_code_pointers(
        self, name: str, routine_names: Sequence[str]
    ) -> "Assembler":
        """Place routine entry addresses in the data section.

        This is how function-pointer tables (vtables, callback arrays)
        appear in real executables; calls through them are *opaque* to
        the analysis (the target register is loaded from memory), which
        exercises the §3.5 unknown-call path while remaining executable.
        The addresses are fixed up at :meth:`build` time.
        """
        if name in self._data_labels:
            raise AssemblyError(f"duplicate data label {name!r}")
        self._data_labels[name] = len(self._data)
        for routine_name in routine_names:
            self._data_pointers.append((len(self._data), routine_name))
            self._data += b"\x00" * 8
        return self

    # ------------------------------------------------------------------
    # Resolution
    # ------------------------------------------------------------------

    @staticmethod
    def _opcode(mnemonic: str) -> Opcode:
        try:
            return MNEMONIC_TO_OPCODE[mnemonic.lower()]
        except KeyError:
            raise AssemblyError(f"unknown mnemonic {mnemonic!r}") from None

    #: BSR reaches ±2^20 instructions; beyond that a call needs a veneer.
    _BSR_RANGE = 1 << 20

    def _expand_far_calls(self) -> None:
        """Replace out-of-range ``bsr`` slots with ``li pv``/``jsr`` veneers.

        Direct calls encode a signed 21-bit instruction displacement
        (±4 MB), which multi-million-instruction programs exceed — real
        linkers insert range-extension thunks, and so do we.  Each
        overflowing ``bsr`` becomes ``ldah pv / lda pv / jsr`` (three
        slots), after which every slot reference (labels, routine
        boundaries, jump-table sites, call-target hints) is remapped.
        Expansion grows the program, so iterate to a fixed point.
        """
        from bisect import bisect_right

        pv = Register.parse("pv").index
        while True:
            start_of = {
                record.name: record.start_slot for record in self._routines
            }
            overflowing: List[int] = []
            for index, slot in enumerate(self._slots):
                if slot.kind != "bsr":
                    continue
                target = start_of.get(slot.symbol)
                if target is None:
                    raise AssemblyError(
                        f"call to unknown routine {slot.symbol!r}"
                    )
                displacement = target - (index + 1)
                if not -self._BSR_RANGE <= displacement < self._BSR_RANGE:
                    overflowing.append(index)
            if not overflowing:
                return

            def remap(index: int) -> int:
                return index + 2 * bisect_right(overflowing, index - 1)

            new_slots: List[_Slot] = []
            overflow_set = set(overflowing)
            for index, slot in enumerate(self._slots):
                if index in overflow_set:
                    new_slots.append(
                        _Slot("li_high", ra=pv, symbol=slot.symbol,
                              label="code")
                    )
                    new_slots.append(
                        _Slot("li_low", ra=pv, symbol=slot.symbol,
                              label="code")
                    )
                    new_slots.append(
                        _Slot(
                            "insn",
                            instruction=Instruction(
                                Opcode.JSR, ra=slot.ra, rb=pv
                            ),
                        )
                    )
                else:
                    new_slots.append(slot)
            self._slots = new_slots
            for key in self._labels:
                self._labels[key] = remap(self._labels[key])
            for record in self._routines:
                record.start_slot = remap(record.start_slot)
                record.end_slot = remap(record.end_slot)
            self._jump_sites = [
                (remap(index), name) for index, name in self._jump_sites
            ]
            self._call_hints = [
                (remap(index), names) for index, names in self._call_hints
            ]

    def build(self, entry: Optional[str] = None) -> ExecutableImage:
        """Resolve all references and produce the executable image."""
        if not self._routines:
            raise AssemblyError("no routines to assemble")
        self._routines[-1].end_slot = len(self._slots)
        for record in self._routines:
            if record.end_slot <= record.start_slot:
                raise AssemblyError(f"routine {record.name!r} is empty")
        self._expand_far_calls()

        routine_address = {
            record.name: self._text_base + record.start_slot * INSTRUCTION_SIZE
            for record in self._routines
        }

        def slot_address(index: int) -> int:
            return self._text_base + index * INSTRUCTION_SIZE

        # Lay out the data section: user data, then jump tables.
        data = bytearray(self._data)
        for offset, routine_name in self._data_pointers:
            if routine_name not in routine_address:
                raise AssemblyError(
                    f"code pointer to unknown routine {routine_name!r}"
                )
            data[offset : offset + 8] = routine_address[routine_name].to_bytes(
                8, "little"
            )
        table_address: Dict[str, int] = {}
        table_targets: Dict[str, Tuple[int, ...]] = {}
        for name, label_keys in self._jump_tables.items():
            targets = []
            for key in label_keys:
                if key not in self._labels:
                    raise AssemblyError(f"jump table {name!r}: unknown label {key!r}")
                targets.append(slot_address(self._labels[key]))
            table_address[name] = self._data_base + len(data)
            table_targets[name] = tuple(targets)
            data += pack_jump_table(targets)

        def code_symbol_address(symbol: str, kind: str) -> int:
            if kind == "data":
                if symbol not in self._data_labels:
                    raise AssemblyError(f"unknown data label {symbol!r}")
                return self._data_base + self._data_labels[symbol]
            if symbol in routine_address:
                return routine_address[symbol]
            if symbol in table_address:
                return table_address[symbol]
            raise AssemblyError(f"unknown symbol {symbol!r}")

        instructions: List[Instruction] = []
        for index, slot in enumerate(self._slots):
            if slot.kind == "insn":
                assert slot.instruction is not None
                instructions.append(slot.instruction)
            elif slot.kind == "branch":
                if slot.label not in self._labels:
                    raise AssemblyError(f"unknown label {slot.label!r}")
                displacement = self._labels[slot.label] - (index + 1)
                instructions.append(
                    Instruction(
                        self._opcode(slot.mnemonic),
                        ra=slot.ra,
                        displacement=displacement,
                    )
                )
            elif slot.kind == "bsr":
                if slot.symbol not in routine_address:
                    raise AssemblyError(f"call to unknown routine {slot.symbol!r}")
                target_slot = (
                    routine_address[slot.symbol] - self._text_base
                ) // INSTRUCTION_SIZE
                displacement = target_slot - (index + 1)
                instructions.append(
                    Instruction(Opcode.BSR, ra=slot.ra, displacement=displacement)
                )
            elif slot.kind == "li_high":
                address = code_symbol_address(slot.symbol, slot.label)
                high, _low = _split_address(address)
                instructions.append(
                    Instruction(
                        Opcode.LDAH, ra=slot.ra, rb=ZERO_REGISTER, displacement=high
                    )
                )
            elif slot.kind == "li_low":
                address = code_symbol_address(slot.symbol, slot.label)
                _high, low = _split_address(address)
                instructions.append(
                    Instruction(Opcode.LDA, ra=slot.ra, rb=slot.ra, displacement=low)
                )
            elif slot.kind == "jmp":
                instructions.append(Instruction(Opcode.JMP, ra=slot.ra, rb=slot.rb))
            else:  # pragma: no cover - exhaustive
                raise AssertionError(f"unknown slot kind {slot.kind}")

        symbols = [
            Symbol(
                record.name,
                slot_address(record.start_slot),
                (record.end_slot - record.start_slot) * INSTRUCTION_SIZE,
                record.exported,
            )
            for record in self._routines
        ]
        jump_tables = [
            JumpTableInfo(
                jump_address=slot_address(slot_index),
                table_address=table_address[name],
                count=len(table_targets[name]),
            )
            for slot_index, name in self._jump_sites
        ]
        call_target_hints = []
        for slot_index, hint_names in self._call_hints:
            targets = []
            for hint_name in hint_names:
                if hint_name not in routine_address:
                    raise AssemblyError(
                        f"call-target hint names unknown routine {hint_name!r}"
                    )
                targets.append(routine_address[hint_name])
            call_target_hints.append(
                CallTargetHint(slot_address(slot_index), tuple(targets))
            )

        entry_name = entry or self._routines[0].name
        if entry_name not in routine_address:
            raise AssemblyError(f"entry routine {entry_name!r} not defined")
        image = ExecutableImage(
            text=encode_stream(instructions),
            data=bytes(data),
            text_base=self._text_base,
            data_base=self._data_base,
            entry_point=routine_address[entry_name],
            symbols=symbols,
            jump_tables=jump_tables,
            data_relocations=[
                self._data_base + offset for offset, _name in self._data_pointers
            ],
            call_target_hints=call_target_hints,
        )
        image.validate()
        return image


def _split_address(value: int) -> Tuple[int, int]:
    """Split ``value`` into (ldah, lda) displacements: value = (h<<16)+l."""
    low = value & 0xFFFF
    if low >= 0x8000:
        low -= 0x10000
    high = (value - low) >> 16
    if not -0x8000 <= high <= 0x7FFF:
        raise AssemblyError(f"address {value:#x} out of ldah/lda range")
    return high, low


# ----------------------------------------------------------------------
# Text front end
# ----------------------------------------------------------------------

_MEMORY_OPERAND = re.compile(r"^(-?\d+)?\(([a-z0-9]+)\)$")
_JUMP_OPERAND = re.compile(r"^\(([a-z0-9]+)\)$")
_TABLE_OPERAND = re.compile(r"^\[([A-Za-z_][\w.]*)\]$")


def assemble(
    source: str,
    *,
    entry: Optional[str] = None,
    text_base: int = DEFAULT_TEXT_BASE,
    data_base: int = DEFAULT_DATA_BASE,
) -> ExecutableImage:
    """Assemble text syntax into an executable image.

    See the module docstring for the syntax.  Comments start with ``;``
    or ``#`` at a token boundary; labels end with ``:`` on their own or
    before an instruction.
    """
    assembler = Assembler(text_base=text_base, data_base=data_base)
    explicit_entry = entry
    for line_number, raw_line in enumerate(source.splitlines(), start=1):
        line = raw_line.split(";", 1)[0].strip()
        if line.startswith("#"):
            continue
        if not line:
            continue
        try:
            line = _consume_labels(assembler, line)
            if not line:
                continue
            if line.startswith("."):
                declared_entry = _directive(assembler, line)
                if declared_entry is not None:
                    explicit_entry = declared_entry
            else:
                _statement(assembler, line)
        except (AssemblyError, ValueError) as exc:
            raise AssemblyError(f"line {line_number}: {exc}") from exc
    return assembler.build(entry=explicit_entry)


def _consume_labels(assembler: Assembler, line: str) -> str:
    while True:
        match = re.match(r"^([A-Za-z_][\w.]*):\s*(.*)$", line)
        if not match:
            return line
        assembler.label(match.group(1))
        line = match.group(2).strip()
        if not line:
            return ""


def _directive(assembler: Assembler, line: str) -> Optional[str]:
    parts = line.split(None, 1)
    directive = parts[0]
    rest = parts[1].strip() if len(parts) > 1 else ""
    if directive == ".routine":
        tokens = rest.split()
        if not tokens:
            raise AssemblyError(".routine needs a name")
        exported = len(tokens) > 1 and tokens[1] == "export"
        assembler.routine(tokens[0], exported=exported)
        return None
    if directive == ".entry":
        if not rest:
            raise AssemblyError(".entry needs a routine name")
        return rest.split()[0]
    if directive == ".jumptable":
        match = re.match(r"^([A-Za-z_][\w.]*)\s*:\s*(.+)$", rest)
        if not match:
            raise AssemblyError(".jumptable syntax: .jumptable NAME: L1, L2, ...")
        labels = [token.strip() for token in match.group(2).split(",")]
        assembler.jump_table(match.group(1), labels)
        return None
    if directive == ".data":
        match = re.match(r"^([A-Za-z_][\w.]*)\s*:\s*(.+)$", rest)
        if not match:
            raise AssemblyError(".data syntax: .data NAME: v1, v2, ...")
        values = [int(token.strip(), 0) for token in match.group(2).split(",")]
        assembler.data_quads(match.group(1), values)
        return None
    raise AssemblyError(f"unknown directive {directive!r}")


def _statement(assembler: Assembler, line: str) -> None:
    parts = line.split(None, 1)
    mnemonic = parts[0].lower()
    operand_text = parts[1] if len(parts) > 1 else ""
    operands = [token.strip() for token in operand_text.split(",")] if operand_text else []

    if mnemonic == "li":
        if len(operands) != 2:
            raise AssemblyError("li needs 2 operands")
        target: Union[int, str]
        if operands[1].startswith(("&", "@")):
            target = operands[1]
        else:
            target = int(operands[1], 0)
        assembler.li(operands[0], target)
        return
    if mnemonic == "halt":
        assembler.halt()
        return
    if mnemonic == "output":
        assembler.output()
        return

    opcode = MNEMONIC_TO_OPCODE.get(mnemonic)
    if opcode is None:
        raise AssemblyError(f"unknown mnemonic {mnemonic!r}")

    if opcode.format in (Format.OPERATE, Format.OPERATE_FP):
        if len(operands) != 3:
            raise AssemblyError(f"{mnemonic} needs 3 operands")
        if operands[1].startswith("#"):
            assembler.op(
                mnemonic, operands[0], int(operands[1][1:], 0), operands[2],
                literal=True,
            )
        else:
            assembler.op(mnemonic, operands[0], operands[1], operands[2])
        return

    if opcode.format in (Format.MEMORY, Format.MEMORY_FP):
        if len(operands) != 2:
            raise AssemblyError(f"{mnemonic} needs 2 operands")
        match = _MEMORY_OPERAND.match(operands[1].replace(" ", ""))
        if not match:
            raise AssemblyError(f"bad memory operand {operands[1]!r}")
        displacement = int(match.group(1) or "0", 0)
        assembler.memory(mnemonic, operands[0], displacement, match.group(2))
        return

    if opcode is Opcode.BSR:
        if len(operands) == 1:
            assembler.bsr(operands[0])
        elif len(operands) == 2:
            assembler.bsr(operands[1], ra=operands[0])
        else:
            raise AssemblyError("bsr needs 1 or 2 operands")
        return

    if opcode is Opcode.BR:
        if len(operands) == 1:
            assembler.br(operands[0])
        elif len(operands) == 2:
            assembler.br(operands[1], ra=operands[0])
        else:
            raise AssemblyError("br needs 1 or 2 operands")
        return

    if opcode.control == ControlKind.COND_BRANCH:
        if len(operands) != 2:
            raise AssemblyError(f"{mnemonic} needs 2 operands")
        assembler.branch(mnemonic, operands[0], operands[1])
        return

    if opcode is Opcode.JSR:
        ra_text, target_text = _jump_operands(mnemonic, operands, default_ra="ra")
        match = _JUMP_OPERAND.match(target_text)
        if not match:
            raise AssemblyError(f"bad jsr operand {target_text!r}")
        assembler.jsr(match.group(1), ra=ra_text)
        return

    if opcode is Opcode.RET:
        ra_text, target_text = _jump_operands(mnemonic, operands, default_ra="zero")
        match = _JUMP_OPERAND.match(target_text)
        if not match:
            raise AssemblyError(f"bad ret operand {target_text!r}")
        assembler.ret(rb=match.group(1), ra=ra_text)
        return

    if opcode is Opcode.JMP:
        stripped = [op.replace(" ", "") for op in operands]
        if len(stripped) == 1:
            match = _JUMP_OPERAND.match(stripped[0])
            if not match:
                raise AssemblyError(f"bad jmp operand {stripped[0]!r}")
            assembler.jmp(match.group(1))
            return
        if len(stripped) == 2:
            table_match = _TABLE_OPERAND.match(stripped[1])
            if table_match:
                assembler.jmp(stripped[0], table=table_match.group(1))
                return
            match = _JUMP_OPERAND.match(stripped[1])
            if match:
                assembler.jmp(match.group(1), ra=stripped[0])
                return
        raise AssemblyError("jmp syntax: jmp (rb) | jmp rb, [TABLE] | jmp ra, (rb)")

    raise AssemblyError(f"cannot assemble {mnemonic!r} here")


def _jump_operands(
    mnemonic: str, operands: List[str], default_ra: str
) -> Tuple[str, str]:
    """Split JSR/RET operands into (link register, target)."""
    stripped = [op.replace(" ", "") for op in operands]
    if len(stripped) == 1:
        return default_ra, stripped[0]
    if len(stripped) == 2:
        return stripped[0], stripped[1]
    raise AssemblyError(f"{mnemonic} needs 1 or 2 operands")
