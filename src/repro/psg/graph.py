"""The assembled Program Summary Graph."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.cfg.cfg import CallSite, ExitKind
from repro.psg.nodes import CallReturnEdge, FlowEdge, NodeKind, PSGNode


@dataclass
class RoutinePSG:
    """The PSG nodes belonging to one routine."""

    routine: str
    entry_node: int
    #: (node id, exit kind) per exit block, in block order.
    exit_nodes: List[Tuple[int, ExitKind]]
    #: (call node id, return node id, call site) per call site.
    call_pairs: List[Tuple[int, int, CallSite]]
    #: branch node ids (one per multiway block), in block order.
    branch_nodes: List[int]
    #: indices into the program-level flow edge list.
    flow_edge_indices: List[int] = field(default_factory=list)

    @property
    def node_count(self) -> int:
        return 1 + len(self.exit_nodes) + 2 * len(self.call_pairs) + len(
            self.branch_nodes
        )

    def return_exit_nodes(self) -> List[int]:
        """Exit nodes of RETURN kind (the ones callers return through)."""
        return [
            node for node, kind in self.exit_nodes if kind == ExitKind.RETURN
        ]


@dataclass
class ProgramSummaryGraph:
    """The whole-program PSG: nodes, flow edges, call-return edges.

    Adjacency is exposed as index lists so the dataflow engines can run
    over flat arrays: ``flow_out[n]`` / ``flow_in[n]`` give indices into
    ``flow_edges``; ``cr_out[n]`` / ``cr_in[n]`` give indices into
    ``call_return_edges``.
    """

    nodes: List[PSGNode]
    flow_edges: List[FlowEdge]
    call_return_edges: List[CallReturnEdge]
    routines: Dict[str, RoutinePSG]

    def __post_init__(self) -> None:
        #: Generation stamp for cached lowerings.  Anything that mutates
        #: what a lowering snapshots — flow-edge labels, topology —
        #: must call :meth:`bump_version`; cached artifacts (the CSR
        #: arena, see :func:`repro.psg.arena.get_arena`) are keyed on
        #: the stamp and rebuild on the next use after a bump.
        self.version: int = 0
        count = len(self.nodes)
        self.flow_out: List[List[int]] = [[] for _ in range(count)]
        self.flow_in: List[List[int]] = [[] for _ in range(count)]
        for index, edge in enumerate(self.flow_edges):
            self.flow_out[edge.src].append(index)
            self.flow_in[edge.dst].append(index)
        self.cr_out: List[Optional[int]] = [None] * count
        self.cr_in: List[Optional[int]] = [None] * count
        for index, edge in enumerate(self.call_return_edges):
            if self.cr_out[edge.src] is not None:
                raise ValueError(f"node {edge.src} has two call-return edges")
            self.cr_out[edge.src] = index
            self.cr_in[edge.dst] = index
        #: callee routine name -> indices of call-return edges that can
        #: target it (hinted edges appear under every possible callee).
        self.cr_edges_to: Dict[str, List[int]] = {}
        for index, edge in enumerate(self.call_return_edges):
            for callee in edge.callees:
                self.cr_edges_to.setdefault(callee, []).append(index)

    def bump_version(self) -> None:
        """Record that the graph was mutated after construction.

        Call this after changing anything a cached lowering captured
        (flow-edge labels, edges, nodes) so the next
        :func:`repro.psg.arena.get_arena` re-lowers instead of
        returning a stale arena.  Phase-1's per-solve relabeling of
        *resolved* call-return edges is exempt — the arena deliberately
        never snapshots those labels.
        """
        self.version += 1

    # ------------------------------------------------------------------
    # Statistics (Tables 3-5)
    # ------------------------------------------------------------------

    @property
    def node_count(self) -> int:
        return len(self.nodes)

    @property
    def edge_count(self) -> int:
        """Flow-summary plus call-return edges."""
        return len(self.flow_edges) + len(self.call_return_edges)

    @property
    def flow_edge_count(self) -> int:
        return len(self.flow_edges)

    @property
    def branch_node_count(self) -> int:
        return sum(len(r.branch_nodes) for r in self.routines.values())

    def nodes_of_kind(self, kind: NodeKind) -> List[PSGNode]:
        return [node for node in self.nodes if node.kind == kind]

    def per_routine_averages(self) -> Dict[str, float]:
        """Average PSG nodes and edges per routine (Table 3 units)."""
        count = max(len(self.routines), 1)
        return {
            "psg_nodes_per_routine": self.node_count / count,
            "psg_edges_per_routine": self.edge_count / count,
        }

    def check(self) -> None:
        """Structural invariants; raises :class:`ValueError` on failure."""
        for index, node in enumerate(self.nodes):
            if node.id != index:
                raise ValueError(f"node {index} has mismatched id {node.id}")
        for edge in self.flow_edges:
            src, dst = self.nodes[edge.src], self.nodes[edge.dst]
            if src.routine != dst.routine:
                raise ValueError(
                    f"flow edge crosses routines: {src.describe()} -> "
                    f"{dst.describe()}"
                )
            if src.kind not in (NodeKind.ENTRY, NodeKind.RETURN, NodeKind.BRANCH):
                raise ValueError(f"flow edge from non-source {src.describe()}")
            if dst.kind not in (NodeKind.EXIT, NodeKind.CALL, NodeKind.BRANCH):
                raise ValueError(f"flow edge into non-target {dst.describe()}")
            if not edge.label.is_consistent():
                raise ValueError(
                    f"edge {src.describe()} -> {dst.describe()} has "
                    f"MUST-DEF ⊄ MAY-DEF"
                )
        for edge in self.call_return_edges:
            src, dst = self.nodes[edge.src], self.nodes[edge.dst]
            if src.kind != NodeKind.CALL or dst.kind != NodeKind.RETURN:
                raise ValueError("call-return edge must link CALL -> RETURN")
            if src.call_site is not dst.call_site:
                raise ValueError("call-return edge links different call sites")
        for name, routine_psg in self.routines.items():
            entry = self.nodes[routine_psg.entry_node]
            if entry.kind != NodeKind.ENTRY or entry.routine != name:
                raise ValueError(f"routine {name!r} has a bad entry node")
