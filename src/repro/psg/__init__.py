"""The Program Summary Graph (§3.1, §3.6).

The PSG is the paper's compact representation of a program's intra- and
interprocedural control flow:

* one **entry node** per routine entrance, one **exit node** per exit,
  and a **call node** / **return node** pair per call instruction
  (§3.1), plus optional **branch nodes** at multiway branches (§3.6);
* **flow-summary edges** connecting nodes with a control-flow path
  between their locations, labeled with the MAY-USE / MAY-DEF /
  MUST-DEF sets of the paths they stand for (computed by the Figure-6
  equations over per-edge CFG subgraphs);
* **call-return edges** connecting each call node to its return node,
  whose labels are filled in by phase 1 with the callee's summary.
"""

from repro.psg.nodes import (
    CallReturnEdge,
    FlowEdge,
    NodeKind,
    PSGNode,
)
from repro.psg.graph import ProgramSummaryGraph, RoutinePSG
from repro.psg.build import PsgConfig, build_psg, build_routine_psg

__all__ = [
    "CallReturnEdge",
    "FlowEdge",
    "NodeKind",
    "PSGNode",
    "ProgramSummaryGraph",
    "PsgConfig",
    "RoutinePSG",
    "build_psg",
    "build_routine_psg",
]
