"""PSG node and edge types.

Nodes carry *where* they are (routine + basic block); all dataflow
state lives in the analysis engines so a PSG can be reused across
phases and configurations.  Flow-summary edges are immutable once
labeled; call-return edges are labeled during phase 1 (the callee's
entry sets are copied onto them) and those labels are retained for
phase 2, exactly as in the paper.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Optional, Tuple

from repro.cfg.cfg import CallSite, ExitKind
from repro.dataflow.equations import SummaryTriple


class NodeKind(enum.IntEnum):
    """The PSG node types of §3.1 and §3.6."""

    ENTRY = 0
    EXIT = 1
    CALL = 2
    RETURN = 3
    BRANCH = 4


@dataclass(frozen=True)
class PSGNode:
    """One PSG node.

    ``block`` is the basic-block index the node's program location
    belongs to: the entry block for ENTRY, the exit block for EXIT, the
    call-ending block for CALL *and* RETURN (the return node's paths
    start at that block's successors), and the multiway-branch block
    for BRANCH.
    """

    id: int
    kind: NodeKind
    routine: str
    block: int
    exit_kind: Optional[ExitKind] = None
    call_site: Optional[CallSite] = None

    def __post_init__(self) -> None:
        if self.kind == NodeKind.EXIT and self.exit_kind is None:
            raise ValueError("EXIT node requires an exit kind")
        if self.kind in (NodeKind.CALL, NodeKind.RETURN) and self.call_site is None:
            raise ValueError(f"{self.kind.name} node requires a call site")

    def describe(self) -> str:
        """A short human-readable identity, e.g. ``call@main:3``."""
        return f"{self.kind.name.lower()}@{self.routine}:{self.block}"


@dataclass(frozen=True)
class FlowEdge:
    """A flow-summary edge with its Figure-6 label."""

    src: int
    dst: int
    label: SummaryTriple


@dataclass
class CallReturnEdge:
    """A call-return edge; ``label`` is written by phase 1.

    ``callees`` lists the routines the call can reach: one name for a
    resolved call, several for a hinted indirect call (the edge label
    is the MAY-union / MUST-intersection of their entry summaries), and
    empty for an unknown target, in which case the §3.5
    calling-standard label is fixed at construction.
    """

    src: int
    dst: int
    callees: Tuple[str, ...]
    label: SummaryTriple = field(default_factory=SummaryTriple)

    @property
    def callee(self) -> Optional[str]:
        """The unique callee, when there is exactly one."""
        return self.callees[0] if len(self.callees) == 1 else None

    @property
    def is_unknown(self) -> bool:
        return not self.callees
