"""CSR-style flat arena lowering of a :class:`ProgramSummaryGraph`.

The object PSG is the right shape for construction and inspection —
nodes and edges are dataclasses, adjacency is lists of edge indices —
but the two-phase solver spends its whole life sweeping that adjacency,
and every sweep pays for attribute lookups, edge-object indirection and
``SummaryTriple`` field reads.  This module lowers a built PSG once
into two coordinated representations:

**The compact snapshot** — parallel primitive arrays
(``array('q')``/``array('i')`` offsets and indices, ``array('Q')``
64-bit register masks), a handful of contiguous buffers totalling a few
dozen bytes per node:

* ``flow_off``/``flow_dst`` — CSR of flow-summary out-edges per node,
  with the edge labels unzipped into ``flow_mu``/``flow_md``/``flow_xd``
  (MAY-USE / MAY-DEF / MUST-DEF masks, parallel to ``flow_dst``);
* ``cr_dst`` — the call-return successor per node (−1 when absent),
  with the fixed §3.5 labels of *unknown* calls baked into
  ``cr_mu``/``cr_md``/``cr_xd`` (resolved calls read their callees'
  live entry state instead, via ``cr_callee_off``/``cr_callee_entry``);
* ``dep1_off``/``dep1`` and ``dep2_off``/``dep2`` — the phase-1 and
  phase-2 dependent sets (who must be revisited when a node changes);
* ``ret_exit_off``/``ret_exit`` — per return node, the RETURN-kind exit
  nodes of every possible callee (the Figure-11 dashed copy arcs).

**The iteration views** — the same data regrouped for the CPython
interpreter.  The union half of each transfer factors algebraically —
``⋁ (label ∨ state[dst])`` equals ``(⋁ label) ∨ ⋁ state[dst]`` — so
the label contribution is folded to one precomputed int per node
(``defs_static``/``uses_static``) and the per-edge tuples carry only
what cannot factor: ``defs_view[n] = ((dst, MUST-DEF), ...)`` for the
intersection half, ``uses_view[n] = ((dst, ~MUST-DEF), ...)`` with the
kill mask pre-complemented.  A solver visit then unpacks each edge
with one ``FOR_ITER`` + ``UNPACK_SEQUENCE`` and two or three indexed
loads — versus five attribute reads off edge objects — and the ints
are boxed once at lowering time instead of on every access.  Dependent
and return-exit adjacency get the same tuple treatment.  (Packing
MAY-DEF and complemented MUST-DEF into one 128-bit accumulator was
tried and measured *slower*: every intermediate exceeds CPython's
fast small-int path, so the saved loads were repaid in big-int
allocations.)

Everything in the arena is immutable topology or construction-time
labels; per-solve state (the mask vectors, the frozen set, phase-1
call-return relabeling) stays with the solve.  The lowering is cached
on the PSG instance (:func:`get_arena`), so repeated solves — the
incremental engine's per-component runs, a worker's phase-1 then
phase-2 pass over the same shard — lower once.  Forked shard workers
inherit the parent's CFGs through the fork and build per-shard partial
PSGs lazily; each worker's arena is likewise built once per shard and
then shared by every solve the worker performs on it.
"""

from __future__ import annotations

from array import array
from typing import List, Sequence, Tuple

from repro.cfg.cfg import ExitKind
from repro.psg.graph import ProgramSummaryGraph
from repro.psg.nodes import NodeKind

__all__ = ["PsgArena", "get_arena", "lower_psg"]


def _csr(rows: Sequence[Sequence[int]]) -> Tuple[array, array]:
    """Flatten per-node rows into (offsets ``'q'``, indices ``'i'``)."""
    offsets = array("q", [0])
    total = 0
    for row in rows:
        total += len(row)
        offsets.append(total)
    indices = array("i")
    for row in rows:
        indices.extend(row)
    return offsets, indices


class PsgArena:
    """One PSG lowered into flat arrays + iteration views (module doc)."""

    __slots__ = (
        "node_count",
        # compact CSR snapshot
        "flow_off", "flow_dst", "flow_mu", "flow_md", "flow_xd",
        "cr_dst", "cr_mu", "cr_md", "cr_xd",
        "cr_callee_off", "cr_callee_entry",
        "dep1_off", "dep1",
        "dep2_off", "dep2",
        "ret_exit_off", "ret_exit",
        # iteration views
        "defs_view", "defs_static", "uses_view", "uses_static",
        "cr_dst_view", "cr_single", "cr_nodes", "cr_callees",
        "dep1_view", "dep2_view", "ret_view",
        "exits",
    )

    def __init__(self, psg: ProgramSummaryGraph) -> None:
        count = len(psg.nodes)
        self.node_count = count
        empty: Tuple[int, ...] = ()

        # Flow-summary adjacency with unzipped labels, in flow_out
        # order so a flat sweep reads edges exactly as the object path
        # does.  Views first; the CSR arrays are packed from them.
        flow_edges = psg.flow_edges
        defs_view: List[tuple] = [empty] * count
        defs_static = [0] * count
        uses_view: List[tuple] = [empty] * count
        uses_static = [0] * count
        flow_off = array("q", [0])
        flow_dst = array("i")
        flow_mu = array("Q")
        flow_md = array("Q")
        flow_xd = array("Q")
        total = 0
        for node in range(count):
            out = psg.flow_out[node]
            if out:
                defs_row = []
                uses_row = []
                static_md = 0
                static_mu = 0
                for edge_index in out:
                    edge = flow_edges[edge_index]
                    label = edge.label
                    dst = edge.dst
                    static_md |= label.may_def
                    static_mu |= label.may_use
                    defs_row.append((dst, label.must_def))
                    uses_row.append((dst, ~label.must_def))
                    flow_dst.append(dst)
                    flow_mu.append(label.may_use)
                    flow_md.append(label.may_def)
                    flow_xd.append(label.must_def)
                defs_view[node] = tuple(defs_row)
                defs_static[node] = static_md
                uses_view[node] = tuple(uses_row)
                uses_static[node] = static_mu
                total += len(out)
            flow_off.append(total)
        self.defs_view = defs_view
        self.defs_static = defs_static
        self.uses_view = uses_view
        self.uses_static = uses_static
        self.flow_off = flow_off
        self.flow_dst = flow_dst
        self.flow_mu = flow_mu
        self.flow_md = flow_md
        self.flow_xd = flow_xd

        # Call-return successor (at most one per node) plus the fixed
        # unknown-call labels; resolved calls carry their callees'
        # entry node ids instead (``cr_callees[n]`` empty + successor
        # present <=> unknown call).
        entry_of = {
            name: routine_psg.entry_node
            for name, routine_psg in psg.routines.items()
        }
        cr_dst = array("i", [-1]) * count
        cr_mu = array("Q", [0]) * count
        cr_md = array("Q", [0]) * count
        cr_xd = array("Q", [0]) * count
        cr_callees: List[Tuple[int, ...]] = [empty] * count
        for edge in psg.call_return_edges:
            cr_dst[edge.src] = edge.dst
            if edge.is_unknown:
                label = edge.label
                cr_mu[edge.src] = label.may_use
                cr_md[edge.src] = label.may_def
                cr_xd[edge.src] = label.must_def
            else:
                cr_callees[edge.src] = tuple(
                    entry_of[callee] for callee in edge.callees
                )
        self.cr_dst = cr_dst
        self.cr_dst_view = list(cr_dst)
        self.cr_mu = cr_mu
        self.cr_md = cr_md
        self.cr_xd = cr_xd
        self.cr_callees = cr_callees
        #: Fast path for the overwhelmingly common monomorphic call:
        #: the callee's entry node when a call resolves to exactly one
        #: routine, else -1 (polymorphic or unknown).
        self.cr_single = [
            row[0] if len(row) == 1 else -1 for row in cr_callees
        ]
        #: The call nodes themselves (nodes with a call-return
        #: successor), so per-solve label precomputes loop over the
        #: call sites instead of scanning every node.
        self.cr_nodes = [
            node for node in range(count) if cr_dst[node] >= 0
        ]
        self.cr_callee_off, self.cr_callee_entry = _csr(cr_callees)

        # Dependents: phase 1 re-reads a changed node from flow sources,
        # call-return sources, and — for entry nodes — every call site
        # that composes the routine's summary.  Phase 2 drops the entry
        # dependency (call nodes read the frozen phase-1 labels).
        dep1: List[List[int]] = [[] for _ in range(count)]
        dep2: List[List[int]] = [[] for _ in range(count)]
        for edge in psg.flow_edges:
            dep1[edge.dst].append(edge.src)
            dep2[edge.dst].append(edge.src)
        for edge in psg.call_return_edges:
            dep1[edge.dst].append(edge.src)
            dep2[edge.dst].append(edge.src)
            for callee in edge.callees:
                dep1[entry_of[callee]].append(edge.src)
        self.dep1_off, self.dep1 = _csr(dep1)
        self.dep2_off, self.dep2 = _csr(dep2)
        self.dep1_view = [tuple(row) for row in dep1]
        self.dep2_view = [tuple(row) for row in dep2]

        # Return node -> RETURN-kind exits of every possible callee.
        ret_exits: List[List[int]] = [[] for _ in range(count)]
        for edge in psg.call_return_edges:
            exits: List[int] = []
            for callee in edge.callees:
                exits.extend(psg.routines[callee].return_exit_nodes())
            if exits:
                ret_exits[edge.dst] = exits
        self.ret_exit_off, self.ret_exit = _csr(ret_exits)
        self.ret_view = [tuple(row) for row in ret_exits]

        #: Boundary nodes: ``(node id, exit kind, routine)`` per EXIT.
        self.exits: List[Tuple[int, ExitKind, str]] = [
            (node.id, node.exit_kind, node.routine)
            for node in psg.nodes
            if node.kind == NodeKind.EXIT
        ]


def lower_psg(psg: ProgramSummaryGraph) -> PsgArena:
    """Lower ``psg`` into a fresh arena (no caching)."""
    return PsgArena(psg)


def get_arena(psg: ProgramSummaryGraph) -> PsgArena:
    """The arena for ``psg``, lowered on first use and cached on the
    instance, keyed on the graph's generation stamp.

    Everything the arena captures — topology, flow labels,
    unknown-call labels — is fixed once the PSG is built, so the cache
    is normally hit forever; phase-1's relabeling of *resolved*
    call-return edges is per-solve state the arena deliberately
    excludes.  Code that *does* mutate captured state must call
    :meth:`ProgramSummaryGraph.bump_version`, after which the next
    call here re-lowers instead of returning the stale arena.
    """
    version = getattr(psg, "version", 0)
    arena = getattr(psg, "_arena", None)
    if arena is not None and getattr(psg, "_arena_version", None) == version:
        return arena
    arena = PsgArena(psg)
    psg._arena = arena  # type: ignore[attr-defined]
    psg._arena_version = version  # type: ignore[attr-defined]
    return arena
