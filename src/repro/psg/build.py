"""PSG construction (§3.1, §3.6).

For each routine Spike produces an entry node, exit nodes, a call and a
return node per call instruction and — when enabled — a branch node per
multiway branch.  Flow-summary edges connect a *source* (entry, return
or branch node) to a *target* (exit, call or branch node) whenever a
control-flow path exists between their locations that does not pass
through another boundary, and each edge is labeled by running the
Figure-6 equations over the CFG subgraph its paths cover.

Three labeling strategies are provided (all produce bit-identical
labels; the test suite asserts this):

* ``per_edge_labeling=True`` — the paper's literal procedure: carve the
  subgraph ``forward(src) ∩ backward(dst)`` and solve it, once per
  edge;
* ``labeling="per-target"`` — solve once per *target* over
  ``backward(dst)`` and read the converged IN sets at each source's
  start blocks.  Because a backward solution at a block only depends on
  blocks it reaches, the labels are identical; it is simply cheaper.
* ``labeling="batched"`` (default) — build the boundary-cut region
  structure once per routine (:class:`~repro.dataflow.equations.
  BatchedLabeler`), topologically order its SCCs, and solve each
  target's region in one successors-first sweep, falling back to a
  worklist only inside components that actually contain a cycle.
  Shared blocks reuse their last transfer result across overlapping
  targets and labels are interned, which is what makes PSG build — the
  dominant cold-analysis stage (Figure 13) — cheap on a Python host.
"""

from __future__ import annotations

import logging
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.obs.metrics import REGISTRY
from repro.obs.tracer import span

from repro.isa.calling_convention import CallingConvention, NT_ALPHA
from repro.dataflow.equations import (
    BatchedLabeler,
    SummaryTriple,
    label_from_starts,
    solve_summary_subgraph,
)
from repro.dataflow.local import LocalSets
from repro.dataflow.regset import mask_of
from repro.program.model import Program
from repro.cfg.cfg import ControlFlowGraph, TerminatorKind
from repro.cfg.subgraph import backward_reachable, forward_reachable
from repro.psg.graph import ProgramSummaryGraph, RoutinePSG
from repro.psg.nodes import CallReturnEdge, FlowEdge, NodeKind, PSGNode


_log = logging.getLogger(__name__)


def _count_build(psg: ProgramSummaryGraph, partial: bool) -> None:
    """Record one PSG construction's sizes in the obs registry.

    Partial builds (incremental cones, parallel shards) add into the
    same size counters — the totals then read as "PSG construction work
    performed this run", which is the Table-5 quantity that matters.
    """
    branch_nodes = sum(
        len(routine.branch_nodes) for routine in psg.routines.values()
    )
    REGISTRY.inc("psg.partial_builds" if partial else "psg.builds")
    REGISTRY.inc("psg.nodes", len(psg.nodes))
    REGISTRY.inc("psg.flow_edges", len(psg.flow_edges))
    REGISTRY.inc("psg.call_return_edges", len(psg.call_return_edges))
    REGISTRY.inc("psg.branch_nodes", branch_nodes)


class PsgBuildError(ValueError):
    """Raised when a routine's control flow defeats the PSG model.

    The one such case is a *boundary-free infinite loop*: blocks
    reachable from a PSG source that cannot reach any exit or call.
    Register uses inside such a loop have no flow-summary edge to live
    on, so the PSG (as defined in the paper) would silently drop them;
    we refuse instead.
    """


@dataclass(frozen=True)
class PsgConfig:
    """Construction options.

    ``branch_nodes`` toggles §3.6 (the Table-4 ablation builds with it
    off); ``multiway_threshold`` is the minimum number of distinct
    successor blocks a multiway branch needs before it earns a branch
    node; ``labeling`` picks the flow-summary labeling strategy
    (``"batched"`` or ``"per-target"``; see the module docstring);
    ``per_edge_labeling`` selects the paper-literal per-edge subgraph
    solve and overrides ``labeling`` when set.
    """

    branch_nodes: bool = True
    multiway_threshold: int = 2
    per_edge_labeling: bool = False
    labeling: str = "batched"
    convention: CallingConvention = field(default_factory=lambda: NT_ALPHA)

    def __post_init__(self) -> None:
        if self.labeling not in ("batched", "per-target"):
            raise ValueError(
                f"unknown labeling strategy {self.labeling!r} "
                f"(expected 'batched' or 'per-target')"
            )


def unknown_call_label(convention: CallingConvention) -> SummaryTriple:
    """The §3.5 calling-standard label for unknown-target calls."""
    return SummaryTriple(
        may_use=mask_of(convention.unknown_call_used()),
        may_def=mask_of(convention.unknown_call_killed()),
        must_def=mask_of(convention.unknown_call_defined()),
    )


def build_psg(
    program: Program,
    cfgs: Dict[str, ControlFlowGraph],
    local_sets: Dict[str, Sequence[LocalSets]],
    config: Optional[PsgConfig] = None,
) -> ProgramSummaryGraph:
    """Build the whole-program PSG."""
    config = config or PsgConfig()
    nodes: List[PSGNode] = []
    flow_edges: List[FlowEdge] = []
    call_return_edges: List[CallReturnEdge] = []
    routines: Dict[str, RoutinePSG] = {}
    with span("psg.build", routines=len(cfgs)):
        for routine in program:
            routine_psg = build_routine_psg(
                cfgs[routine.name],
                local_sets[routine.name],
                config,
                nodes,
                flow_edges,
                call_return_edges,
            )
            routines[routine.name] = routine_psg
        psg = ProgramSummaryGraph(
            nodes=nodes,
            flow_edges=flow_edges,
            call_return_edges=call_return_edges,
            routines=routines,
        )
        psg.check()
    _count_build(psg, partial=False)
    _log.debug(
        "built PSG: %d routines, %d nodes, %d flow edges, %d call-return edges",
        len(routines), len(nodes), len(flow_edges), len(call_return_edges),
    )
    return psg


@dataclass
class PartialPsg:
    """A PSG over a subset of the program's routines.

    ``external_entries`` maps each callee *outside* the subset to a
    dummy entry node: the incremental engine pins those nodes at the
    callee's already-known phase-1 triple (via ``run_phase1``'s
    ``fixed_entries``), so calls leaving the subset read converged
    summaries instead of re-solving the callee.  Dummy routines carry
    no exit nodes, so phase 2's return-to-exit liveness copies stop at
    the subset boundary (the boundary flow is injected as
    ``extra_exit_live`` seeds instead).
    """

    psg: ProgramSummaryGraph
    members: List[str]
    external_entries: Dict[str, int]


def build_partial_psg(
    cfgs: Dict[str, ControlFlowGraph],
    local_sets: Dict[str, Sequence[LocalSets]],
    members: Sequence[str],
    config: Optional[PsgConfig] = None,
) -> PartialPsg:
    """Build a PSG containing only ``members``, with dummy pinned-entry
    nodes standing in for callees outside the subset."""
    config = config or PsgConfig()
    nodes: List[PSGNode] = []
    flow_edges: List[FlowEdge] = []
    call_return_edges: List[CallReturnEdge] = []
    routines: Dict[str, RoutinePSG] = {}
    member_set = set(members)
    with span("psg.build_partial", members=len(members)):
        for name in members:
            routines[name] = build_routine_psg(
                cfgs[name],
                local_sets[name],
                config,
                nodes,
                flow_edges,
                call_return_edges,
            )
        external_entries: Dict[str, int] = {}
        for edge in call_return_edges:
            for callee in edge.callees:
                if callee in member_set or callee in external_entries:
                    continue
                node = PSGNode(
                    id=len(nodes), kind=NodeKind.ENTRY, routine=callee, block=0
                )
                nodes.append(node)
                external_entries[callee] = node.id
                routines[callee] = RoutinePSG(
                    routine=callee,
                    entry_node=node.id,
                    exit_nodes=[],
                    call_pairs=[],
                    branch_nodes=[],
                )
        psg = ProgramSummaryGraph(
            nodes=nodes,
            flow_edges=flow_edges,
            call_return_edges=call_return_edges,
            routines=routines,
        )
        psg.check()
    _count_build(psg, partial=True)
    _log.debug(
        "built partial PSG: %d members, %d external entries, %d nodes",
        len(members), len(external_entries), len(nodes),
    )
    return PartialPsg(
        psg=psg, members=list(members), external_entries=external_entries
    )


def build_routine_psg(
    cfg: ControlFlowGraph,
    local_sets: Sequence[LocalSets],
    config: PsgConfig,
    nodes: List[PSGNode],
    flow_edges: List[FlowEdge],
    call_return_edges: List[CallReturnEdge],
) -> RoutinePSG:
    """Build one routine's nodes and edges into the shared lists."""
    name = cfg.routine.name
    blocks = cfg.blocks

    def new_node(kind: NodeKind, block: int, **extra) -> int:
        node = PSGNode(id=len(nodes), kind=kind, routine=name, block=block, **extra)
        nodes.append(node)
        return node.id

    # ------------------------------------------------------------------
    # Nodes
    # ------------------------------------------------------------------
    entry_node = new_node(NodeKind.ENTRY, cfg.entry_index)
    exit_nodes: List[Tuple[int, object]] = []
    for block_index, exit_kind in cfg.exits:
        exit_nodes.append(
            (new_node(NodeKind.EXIT, block_index, exit_kind=exit_kind), exit_kind)
        )
    call_pairs = []
    for site in cfg.call_sites:
        call_node = new_node(NodeKind.CALL, site.block, call_site=site)
        return_node = new_node(NodeKind.RETURN, site.block, call_site=site)
        call_pairs.append((call_node, return_node, site))
        label = (
            unknown_call_label(config.convention)
            if site.is_unknown
            else SummaryTriple()
        )
        call_return_edges.append(
            CallReturnEdge(src=call_node, dst=return_node,
                           callees=site.targets, label=label)
        )
    branch_blocks: List[int] = []
    if config.branch_nodes:
        for block in blocks:
            if (
                block.terminator == TerminatorKind.MULTIWAY
                and len(block.successors) >= config.multiway_threshold
            ):
                branch_blocks.append(block.index)
    branch_nodes = [new_node(NodeKind.BRANCH, index) for index in branch_blocks]

    # ------------------------------------------------------------------
    # Sources, targets, and the boundary cut
    # ------------------------------------------------------------------
    blocked: Set[int] = {site.block for site in cfg.call_sites}
    blocked.update(branch_blocks)

    sources: List[Tuple[int, List[int]]] = [(entry_node, [cfg.entry_index])]
    for call_node, return_node, site in call_pairs:
        sources.append((return_node, list(blocks[site.block].successors)))
    for node_id, block_index in zip(branch_nodes, branch_blocks):
        sources.append((node_id, list(blocks[block_index].successors)))

    targets: List[Tuple[int, int]] = []
    for node_id, _kind in exit_nodes:
        targets.append((node_id, nodes[node_id].block))
    for call_node, _return_node, site in call_pairs:
        targets.append((call_node, site.block))
    for node_id, block_index in zip(branch_nodes, branch_blocks):
        targets.append((node_id, block_index))

    # ------------------------------------------------------------------
    # Edges
    # ------------------------------------------------------------------
    edge_indices: List[int] = []
    use_batched = not config.per_edge_labeling and config.labeling == "batched"
    labeler: Optional[BatchedLabeler] = None
    backward_sets: List[Set[int]] = []
    reaches_some_target: Set[int] = set()
    if use_batched:
        # The labeler's cut-predecessor DFS computes the same region as
        # backward_reachable (blocked blocks have no outgoing cut arcs),
        # reusing the structure built once per routine.
        labeler = BatchedLabeler(blocks, local_sets, blocked)
        for _node_id, target_block in targets:
            reach = labeler.region(target_block)
            backward_sets.append(reach)
            reaches_some_target |= reach
    else:
        for _node_id, target_block in targets:
            reach = backward_reachable(blocks, target_block, blocked)
            backward_sets.append(reach)
            reaches_some_target |= reach

    # Soundness check: every block reachable from a source must reach a
    # target, or its register uses would be lost (see PsgBuildError).
    all_starts: Set[int] = set()
    for _node_id, starts in sources:
        all_starts.update(starts)
    reachable = forward_reachable(blocks, all_starts, blocked)
    divergent = reachable - reaches_some_target
    if divergent:
        raise PsgBuildError(
            f"routine {name!r}: blocks {sorted(divergent)} cannot reach any "
            f"exit or call (boundary-free infinite loop); the PSG cannot "
            f"represent their register usage"
        )

    if config.per_edge_labeling:
        forward_sets = [
            forward_reachable(blocks, starts, blocked) for _n, starts in sources
        ]
        for (src_node, starts), fwd in zip(sources, forward_sets):
            for (dst_node, _target_block), bwd in zip(targets, backward_sets):
                valid_starts = [s for s in starts if s in bwd]
                if not valid_starts:
                    continue
                subgraph = fwd & bwd
                solution = solve_summary_subgraph(
                    blocks, local_sets, subgraph, blocked
                )
                label = label_from_starts(solution, valid_starts)
                edge_indices.append(len(flow_edges))
                flow_edges.append(FlowEdge(src=src_node, dst=dst_node, label=label))
    elif use_batched:
        assert labeler is not None
        for (dst_node, _target_block), bwd in zip(targets, backward_sets):
            solution = labeler.solve(bwd)
            for src_node, starts in sources:
                valid_starts = [s for s in starts if s in bwd]
                if not valid_starts:
                    continue
                label = labeler.label(solution, valid_starts)
                edge_indices.append(len(flow_edges))
                flow_edges.append(FlowEdge(src=src_node, dst=dst_node, label=label))
    else:
        for (dst_node, _target_block), bwd in zip(targets, backward_sets):
            solution = solve_summary_subgraph(blocks, local_sets, bwd, blocked)
            for src_node, starts in sources:
                valid_starts = [s for s in starts if s in bwd]
                if not valid_starts:
                    continue
                label = label_from_starts(solution, valid_starts)
                edge_indices.append(len(flow_edges))
                flow_edges.append(FlowEdge(src=src_node, dst=dst_node, label=label))

    routine_psg = RoutinePSG(
        routine=name,
        entry_node=entry_node,
        exit_nodes=exit_nodes,  # type: ignore[arg-type]
        call_pairs=call_pairs,
        branch_nodes=branch_nodes,
        flow_edge_indices=edge_indices,
    )
    return routine_psg
