"""A generic iterative worklist solver.

All of the paper's dataflow problems — the Figure-6 equations over
flow-summary-edge subgraphs, the two interprocedural phases over the
PSG, the full-CFG baseline, and the client-side liveness used by the
optimizer — are monotone bit-vector problems.  This module provides one
worklist engine for them.

The solver is *backward* oriented (information flows against the
arcs, as in every analysis in the paper): for each node ``n``,

.. code-block:: none

    OUT[n] = fold(combine, IN[s] for s in successors(n))   (boundary if none)
    IN[n]  = transfer(n, OUT[n])

States are arbitrary hashable values supplied by the client (in
practice tuples of int masks).  Nodes whose ``IN`` changes push their
predecessors back onto the worklist; the engine iterates to a fixed
point.  Forward problems are solved by handing the solver the reversed
edge set.
"""

from __future__ import annotations

from collections import deque
from typing import Callable, Generic, Iterable, List, Optional, Sequence, Tuple, TypeVar

State = TypeVar("State")

Transfer = Callable[[int, State], State]
#: Binary combine: folds two states into one.  The solver folds a
#: node's successor states pairwise, so a visit allocates no
#: intermediate list and a single-successor node (the common case)
#: never calls combine at all.
Combine = Callable[[State, State], State]


class SolverDivergence(RuntimeError):
    """Raised when the iteration count exceeds the safety bound.

    A correct monotone problem over a finite lattice cannot diverge;
    hitting this bound indicates a non-monotone transfer function.
    """


class WorklistSolver(Generic[State]):
    """Worklist fixed-point engine over an explicit digraph.

    Parameters
    ----------
    node_count:
        Number of nodes; nodes are the ints ``0 .. node_count-1``.
    edges:
        Directed edges ``(src, dst)``.  Information flows from ``dst``
        (successor) to ``src`` (predecessor), i.e. backward.
    """

    def __init__(self, node_count: int, edges: Iterable[Tuple[int, int]]) -> None:
        self._node_count = node_count
        self._successors: List[List[int]] = [[] for _ in range(node_count)]
        self._predecessors: List[List[int]] = [[] for _ in range(node_count)]
        for src, dst in edges:
            if not (0 <= src < node_count and 0 <= dst < node_count):
                raise ValueError(f"edge ({src}, {dst}) out of range")
            self._successors[src].append(dst)
            self._predecessors[dst].append(src)

    @property
    def node_count(self) -> int:
        return self._node_count

    def successors(self, node: int) -> Sequence[int]:
        return self._successors[node]

    def predecessors(self, node: int) -> Sequence[int]:
        return self._predecessors[node]

    def solve(
        self,
        transfer: Transfer,
        combine: Combine,
        boundary: State,
        initial: State,
        order: Optional[Sequence[int]] = None,
        max_passes: int = 10_000_000,
    ) -> List[State]:
        """Iterate to a fixed point; returns the ``IN`` state per node.

        ``boundary`` is the OUT value for nodes with no successors;
        ``initial`` seeds every node's IN.  ``order`` optionally gives
        the initial worklist order (e.g. postorder for fast backward
        convergence); all nodes are seeded regardless.
        """
        states: List[State] = [initial] * self._node_count
        seed = list(order) if order is not None else list(range(self._node_count))
        if len(set(seed)) != self._node_count:
            raise ValueError("order must enumerate every node exactly once")
        worklist: deque = deque(seed)
        queued = [True] * self._node_count
        passes = 0
        while worklist:
            passes += 1
            if passes > max_passes:
                raise SolverDivergence(
                    f"no fixed point after {max_passes} node visits"
                )
            node = worklist.popleft()
            queued[node] = False
            succs = self._successors[node]
            if succs:
                out_state = states[succs[0]]
                for i in range(1, len(succs)):
                    out_state = combine(out_state, states[succs[i]])
            else:
                out_state = boundary
            new_state = transfer(node, out_state)
            if new_state != states[node]:
                states[node] = new_state
                for predecessor in self._predecessors[node]:
                    if not queued[predecessor]:
                        queued[predecessor] = True
                        worklist.append(predecessor)
        return states


class SubgraphWorklist:
    """A chaotic-iteration worklist over a *subgraph view* of a node set.

    The PSG phases (and the sharded parallel solver built on them) all
    iterate the same way: a universe of ``node_count`` nodes, a subset
    of **frozen** boundary nodes whose values are fixed (exit nodes,
    entries pinned at cached or shard-published triples), and a
    ``dependents`` map saying which nodes must be revisited when a
    node's value changes.  This class owns the queue/dedup machinery so
    every client iterates the *interior* of its subgraph identically;
    the frozen mask is what makes the view a subgraph — frozen nodes
    are never visited and never enqueued, so iteration cannot escape
    the region they bound.

    ``transfer(node) -> bool`` recomputes one node's value in place and
    reports whether it changed; clients needing extra propagation (the
    phase-2 return-to-exit copies) call :meth:`enqueue` from inside
    their transfer function.
    """

    __slots__ = ("_dependents", "_frozen", "_queue", "_queued", "max_depth")

    def __init__(
        self,
        node_count: int,
        dependents: Sequence[Sequence[int]],
        frozen: Sequence[bool],
        seed_order: Sequence[int],
    ) -> None:
        self._dependents = dependents
        self._frozen = frozen
        self._queue: deque = deque(
            node for node in seed_order if not frozen[node]
        )
        self._queued = [False] * node_count
        for node in self._queue:
            self._queued[node] = True
        #: Deepest the queue has been, including the initial seed — a
        #: convergence gauge surfaced as ``solver.max_queue_depth``.
        self.max_depth = len(self._queue)

    def enqueue(self, node: int) -> None:
        """Schedule ``node`` for (re)visiting unless frozen or queued."""
        if not self._queued[node] and not self._frozen[node]:
            self._queued[node] = True
            self._queue.append(node)

    def run(
        self,
        transfer: Callable[[int], bool],
        counts: Optional[List[int]] = None,
    ) -> int:
        """Iterate to a fixed point; returns the number of node visits.

        ``counts`` (one slot per node in the universe) accumulates
        per-node visit counts when provided; the phase engines use it
        to attribute worklist work to routines for ``report``.
        """
        queue = self._queue
        queued = self._queued
        dependents = self._dependents
        visits = 0
        max_depth = self.max_depth
        while queue:
            depth = len(queue)
            if depth > max_depth:
                max_depth = depth
            node = queue.popleft()
            queued[node] = False
            visits += 1
            if counts is not None:
                counts[node] += 1
            if transfer(node):
                for dependent in dependents[node]:
                    self.enqueue(dependent)
        self.max_depth = max_depth
        return visits


def postorder(
    node_count: int, successors: Sequence[Sequence[int]], roots: Iterable[int]
) -> List[int]:
    """Iterative DFS postorder from ``roots`` (unreached nodes appended).

    Backward analyses converge fastest when seeded in postorder of the
    forward graph (so successors are processed before predecessors).
    """
    visited = [False] * node_count
    order: List[int] = []
    for root in roots:
        if visited[root]:
            continue
        stack: List[Tuple[int, int]] = [(root, 0)]
        visited[root] = True
        while stack:
            node, child = stack[-1]
            if child < len(successors[node]):
                stack[-1] = (node, child + 1)
                next_node = successors[node][child]
                if not visited[next_node]:
                    visited[next_node] = True
                    stack.append((next_node, 0))
            else:
                stack.pop()
                order.append(node)
    for node in range(node_count):
        if not visited[node]:
            order.append(node)
    return order
