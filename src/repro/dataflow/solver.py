"""A generic iterative worklist solver.

All of the paper's dataflow problems — the Figure-6 equations over
flow-summary-edge subgraphs, the two interprocedural phases over the
PSG, the full-CFG baseline, and the client-side liveness used by the
optimizer — are monotone bit-vector problems.  This module provides one
worklist engine for them.

The solver is *backward* oriented (information flows against the
arcs, as in every analysis in the paper): for each node ``n``,

.. code-block:: none

    OUT[n] = fold(combine, IN[s] for s in successors(n))   (boundary if none)
    IN[n]  = transfer(n, OUT[n])

States are arbitrary hashable values supplied by the client (in
practice tuples of int masks).  Nodes whose ``IN`` changes push their
predecessors back onto the worklist; the engine iterates to a fixed
point.  Forward problems are solved by handing the solver the reversed
edge set.
"""

from __future__ import annotations

from collections import deque
from heapq import heappop, heappush
from typing import Callable, Generic, Iterable, List, Optional, Sequence, Tuple, TypeVar

State = TypeVar("State")

Transfer = Callable[[int, State], State]
#: Binary combine: folds two states into one.  The solver folds a
#: node's successor states pairwise, so a visit allocates no
#: intermediate list and a single-successor node (the common case)
#: never calls combine at all.
Combine = Callable[[State, State], State]


class SolverDivergence(RuntimeError):
    """Raised when the iteration count exceeds the safety bound.

    A correct monotone problem over a finite lattice cannot diverge;
    hitting this bound indicates a non-monotone transfer function.
    """


class WorklistSolver(Generic[State]):
    """Worklist fixed-point engine over an explicit digraph.

    Parameters
    ----------
    node_count:
        Number of nodes; nodes are the ints ``0 .. node_count-1``.
    edges:
        Directed edges ``(src, dst)``.  Information flows from ``dst``
        (successor) to ``src`` (predecessor), i.e. backward.
    """

    def __init__(self, node_count: int, edges: Iterable[Tuple[int, int]]) -> None:
        self._node_count = node_count
        self._successors: List[List[int]] = [[] for _ in range(node_count)]
        self._predecessors: List[List[int]] = [[] for _ in range(node_count)]
        for src, dst in edges:
            if not (0 <= src < node_count and 0 <= dst < node_count):
                raise ValueError(f"edge ({src}, {dst}) out of range")
            self._successors[src].append(dst)
            self._predecessors[dst].append(src)

    @property
    def node_count(self) -> int:
        return self._node_count

    def successors(self, node: int) -> Sequence[int]:
        return self._successors[node]

    def predecessors(self, node: int) -> Sequence[int]:
        return self._predecessors[node]

    def solve(
        self,
        transfer: Transfer,
        combine: Combine,
        boundary: State,
        initial: State,
        order: Optional[Sequence[int]] = None,
        max_passes: int = 10_000_000,
    ) -> List[State]:
        """Iterate to a fixed point; returns the ``IN`` state per node.

        ``boundary`` is the OUT value for nodes with no successors;
        ``initial`` seeds every node's IN.  ``order`` optionally gives
        the *priority* order: the worklist is a rank-keyed min-heap, so
        a node earlier in ``order`` is always revisited before a later
        one (e.g. postorder for fast backward convergence); all nodes
        are seeded regardless.
        """
        node_count = self._node_count
        states: List[State] = [initial] * node_count
        by_rank = list(order) if order is not None else list(range(node_count))
        if len(set(by_rank)) != node_count:
            raise ValueError("order must enumerate every node exactly once")
        rank_of = [0] * node_count
        for rank, node in enumerate(by_rank):
            rank_of[node] = rank
        heap = list(range(node_count))  # ascending ranks: a valid heap
        queued = [True] * node_count
        passes = 0
        while heap:
            passes += 1
            if passes > max_passes:
                raise SolverDivergence(
                    f"no fixed point after {max_passes} node visits"
                )
            node = by_rank[heappop(heap)]
            queued[node] = False
            succs = self._successors[node]
            if succs:
                out_state = states[succs[0]]
                for i in range(1, len(succs)):
                    out_state = combine(out_state, states[succs[i]])
            else:
                out_state = boundary
            new_state = transfer(node, out_state)
            if new_state != states[node]:
                states[node] = new_state
                for predecessor in self._predecessors[node]:
                    if not queued[predecessor]:
                        queued[predecessor] = True
                        heappush(heap, rank_of[predecessor])
        return states


class SubgraphWorklist:
    """A chaotic-iteration worklist over a *subgraph view* of a node set.

    The PSG phases (and the sharded parallel solver built on them) all
    iterate the same way: a universe of ``node_count`` nodes, a subset
    of **frozen** boundary nodes whose values are fixed (exit nodes,
    entries pinned at cached or shard-published triples), and a
    ``dependents`` map saying which nodes must be revisited when a
    node's value changes.  This class owns the queue/dedup machinery so
    every client iterates the *interior* of its subgraph identically;
    the frozen mask is what makes the view a subgraph — frozen nodes
    are never visited and never enqueued, so iteration cannot escape
    the region they bound.

    ``transfer(node) -> bool`` recomputes one node's value in place and
    reports whether it changed; clients needing extra propagation (the
    phase-2 return-to-exit copies) call :meth:`enqueue` from inside
    their transfer function.

    Scheduling is a **priority worklist** by default: ``seed_order``
    doubles as the rank key, and the queue is a min-heap of ranks with
    an in-queue bitmap, so the most-upstream pending node (callee-first
    for phase 1, caller-first for phase 2 — i.e. reverse postorder of
    the dependency direction) is always visited next.  That ordering
    visits a node only after its typical suppliers have settled,
    cutting revisits sharply versus FIFO.  ``order="fifo"`` restores
    the pre-priority deque scheduling as a bisect/measurement baseline;
    both reach the identical fixed point (chaotic iteration of a
    monotone system is order-independent).
    """

    __slots__ = (
        "_dependents", "_frozen", "_queued",
        "_heap", "_by_rank", "_rank_of", "_queue",
        "max_depth", "pushes", "skipped", "revisits", "_seen",
    )

    def __init__(
        self,
        node_count: int,
        dependents: Sequence[Sequence[int]],
        frozen: Sequence[bool],
        seed_order: Sequence[int],
        order: str = "priority",
    ) -> None:
        self._dependents = dependents
        self._frozen = frozen
        # Frozen boundary nodes are marked permanently in-queue: the
        # enqueue fast path then suppresses them with the bitmap test
        # alone (they are popped by neither scheduler).
        self._queued = bytearray(node_count)
        for node in range(node_count):
            if frozen[node]:
                self._queued[node] = 1
        self._seen = bytearray(node_count)
        seeds = [node for node in seed_order if not frozen[node]]
        for node in seeds:
            self._queued[node] = 1
        if order == "priority":
            by_rank = list(seed_order)
            rank_of = [0] * node_count
            listed = bytearray(node_count)
            for rank, node in enumerate(by_rank):
                rank_of[node] = rank
                listed[node] = 1
            for node in range(node_count):  # robustness: partial orders
                if not listed[node]:
                    rank_of[node] = len(by_rank)
                    by_rank.append(node)
            self._by_rank = by_rank
            self._rank_of = rank_of
            # Seed ranks are ascending by construction: a valid heap.
            self._heap: Optional[List[int]] = [rank_of[n] for n in seeds]
            self._queue: deque = deque()
        elif order == "fifo":
            self._heap = None
            self._by_rank = []
            self._rank_of = []
            self._queue = deque(seeds)
        else:
            raise ValueError(f"unknown worklist order {order!r}")
        #: Deepest the queue has been, including the initial seed — a
        #: convergence gauge surfaced as ``solver.max_queue_depth``.
        self.max_depth = len(seeds)
        #: Nodes scheduled (seeds included) — ``solver.pushes``.
        self.pushes = len(seeds)
        #: Enqueues suppressed by the in-queue bitmap —
        #: ``solver.skipped_inqueue``.
        self.skipped = 0
        #: Visits of a node already visited in this run —
        #: ``solver.revisits``.
        self.revisits = 0

    def enqueue(self, node: int) -> None:
        """Schedule ``node`` for (re)visiting unless frozen or queued."""
        if self._queued[node]:
            self.skipped += 1
            return
        self._queued[node] = 1
        self.pushes += 1
        if self._heap is not None:
            heappush(self._heap, self._rank_of[node])
        else:
            self._queue.append(node)

    def run(
        self,
        transfer: Callable[[int], bool],
        counts: Optional[List[int]] = None,
    ) -> int:
        """Iterate to a fixed point; returns the number of node visits.

        ``counts`` (one slot per node in the universe) accumulates
        per-node visit counts when provided; the phase engines use it
        to attribute worklist work to routines for ``report``.
        """
        queued = self._queued
        seen = self._seen
        dependents = self._dependents
        heap = self._heap
        by_rank = self._by_rank
        queue = self._queue
        visits = 0
        revisits = self.revisits
        max_depth = self.max_depth
        while True:
            if heap is not None:
                depth = len(heap)
                if not depth:
                    break
                node = by_rank[heappop(heap)]
            else:
                depth = len(queue)
                if not depth:
                    break
                node = queue.popleft()
            if depth > max_depth:
                max_depth = depth
            queued[node] = 0
            visits += 1
            if seen[node]:
                revisits += 1
            else:
                seen[node] = 1
            if counts is not None:
                counts[node] += 1
            if transfer(node):
                for dependent in dependents[node]:
                    self.enqueue(dependent)
        self.max_depth = max_depth
        self.revisits = revisits
        return visits


def postorder(
    node_count: int, successors: Sequence[Sequence[int]], roots: Iterable[int]
) -> List[int]:
    """Iterative DFS postorder from ``roots`` (unreached nodes appended).

    Backward analyses converge fastest when seeded in postorder of the
    forward graph (so successors are processed before predecessors).
    """
    visited = [False] * node_count
    order: List[int] = []
    for root in roots:
        if visited[root]:
            continue
        stack: List[Tuple[int, int]] = [(root, 0)]
        visited[root] = True
        while stack:
            node, child = stack[-1]
            if child < len(successors[node]):
                stack[-1] = (node, child + 1)
                next_node = successors[node][child]
                if not visited[next_node]:
                    visited[next_node] = True
                    stack.append((next_node, 0))
            else:
                stack.pop()
                order.append(node)
    for node in range(node_count):
        if not visited[node]:
            order.append(node)
    return order
