"""Register sets as immutable int-backed bit vectors.

The paper's dataflow sets (MAY-USE, MAY-DEF, MUST-DEF, DEF, UBD,
live-at-entry, live-at-exit, call-used, call-defined, call-killed) are
all sets of machine registers — classic bit vectors.  With 64
architectural registers, a set fits in one machine word; in Python we
represent it as an int bitmask, which makes union/intersection/
difference single arithmetic operations.

Inner loops of the solvers work on raw masks for speed.
:class:`RegisterSet` is the immutable, hashable wrapper used at API
boundaries; it supports the full set algebra via operators.
"""

from __future__ import annotations

from typing import FrozenSet, Iterable, Iterator, List, Union

from repro.isa.registers import (
    ALL_REGISTERS,
    FLOAT_ZERO_REGISTER,
    NUM_REGISTERS,
    Register,
    ZERO_REGISTER,
)

#: Bitmask covering every architectural register.
FULL_MASK: int = (1 << NUM_REGISTERS) - 1

#: Bitmask of the registers the analysis tracks: everything except the
#: hardwired zero registers, which carry no dataflow.
TRACKED_MASK: int = FULL_MASK & ~(1 << ZERO_REGISTER) & ~(1 << FLOAT_ZERO_REGISTER)

RegisterLike = Union[Register, int, str]


def _index(value: RegisterLike) -> int:
    if isinstance(value, Register):
        return value.index
    if isinstance(value, int):
        if not 0 <= value < NUM_REGISTERS:
            raise ValueError(f"register index {value} out of range")
        return value
    return Register.parse(value).index


def mask_of(registers: Iterable[RegisterLike]) -> int:
    """Build a raw bitmask from register-like values."""
    mask = 0
    for register in registers:
        mask |= 1 << _index(register)
    return mask


def iter_mask(mask: int) -> Iterator[int]:
    """Yield the register indices set in ``mask``, ascending."""
    while mask:
        low = mask & -mask
        yield low.bit_length() - 1
        mask ^= low


# Every RegisterSet construction (including the one behind each set
# operator) bumps this process-local count.  It is deliberately a bare
# dict increment rather than a registry call: this is the hottest
# API-boundary path, and the observability layer folds the delta into
# ``regset.constructed`` once per run instead.
_STATS = {"constructed": 0}


def construction_count() -> int:
    """Cumulative number of RegisterSet objects built in this process."""
    return _STATS["constructed"]


class RegisterSet:
    """An immutable set of registers.

    Construct from register-like values (``Register``, index, or name)
    or adopt a raw mask with :meth:`from_mask`:

    >>> s = RegisterSet(["r1", "r2"])
    >>> "r1" in s, "r3" in s
    (True, False)
    >>> (s | RegisterSet(["r3"])).mask == RegisterSet(["r1", "r2", "r3"]).mask
    True
    """

    __slots__ = ("_mask",)

    def __init__(self, registers: Iterable[RegisterLike] = ()) -> None:
        self._mask = mask_of(registers)
        _STATS["constructed"] += 1

    @classmethod
    def from_mask(cls, mask: int) -> "RegisterSet":
        """Adopt a raw bitmask (must fit the register file)."""
        if not 0 <= mask <= FULL_MASK:
            raise ValueError(f"mask {mask:#x} exceeds the register file")
        instance = cls.__new__(cls)
        instance._mask = mask
        _STATS["constructed"] += 1
        return instance

    @property
    def mask(self) -> int:
        """The raw bitmask."""
        return self._mask

    # -- set algebra ----------------------------------------------------

    def __or__(self, other: "RegisterSet") -> "RegisterSet":
        return RegisterSet.from_mask(self._mask | other._mask)

    def __and__(self, other: "RegisterSet") -> "RegisterSet":
        return RegisterSet.from_mask(self._mask & other._mask)

    def __sub__(self, other: "RegisterSet") -> "RegisterSet":
        return RegisterSet.from_mask(self._mask & ~other._mask & FULL_MASK)

    def __xor__(self, other: "RegisterSet") -> "RegisterSet":
        return RegisterSet.from_mask(self._mask ^ other._mask)

    def union(self, *others: "RegisterSet") -> "RegisterSet":
        mask = self._mask
        for other in others:
            mask |= other._mask
        return RegisterSet.from_mask(mask)

    def intersection(self, *others: "RegisterSet") -> "RegisterSet":
        mask = self._mask
        for other in others:
            mask &= other._mask
        return RegisterSet.from_mask(mask)

    def difference(self, other: "RegisterSet") -> "RegisterSet":
        return self - other

    def complement(self) -> "RegisterSet":
        """All registers not in this set."""
        return RegisterSet.from_mask(~self._mask & FULL_MASK)

    def add(self, register: RegisterLike) -> "RegisterSet":
        """A new set with ``register`` included."""
        return RegisterSet.from_mask(self._mask | (1 << _index(register)))

    def remove(self, register: RegisterLike) -> "RegisterSet":
        """A new set with ``register`` excluded."""
        return RegisterSet.from_mask(self._mask & ~(1 << _index(register)) & FULL_MASK)

    # -- predicates -------------------------------------------------------

    def __contains__(self, register: RegisterLike) -> bool:
        return bool(self._mask >> _index(register) & 1)

    def issubset(self, other: "RegisterSet") -> bool:
        return self._mask & ~other._mask == 0

    def issuperset(self, other: "RegisterSet") -> bool:
        return other._mask & ~self._mask == 0

    def isdisjoint(self, other: "RegisterSet") -> bool:
        return self._mask & other._mask == 0

    def __bool__(self) -> bool:
        return self._mask != 0

    if hasattr(int, "bit_count"):  # Python >= 3.10

        def __len__(self) -> int:
            return self._mask.bit_count()

    else:  # pragma: no cover - exercised only on Python 3.9

        def __len__(self) -> int:
            return bin(self._mask).count("1")

    def __eq__(self, other: object) -> bool:
        if isinstance(other, RegisterSet):
            return self._mask == other._mask
        return NotImplemented

    def __hash__(self) -> int:
        return hash(("RegisterSet", self._mask))

    # -- iteration / presentation -----------------------------------------

    def __iter__(self) -> Iterator[Register]:
        # Interned instances from the ISA table: iterating a set never
        # constructs (or range-checks) a Register per member.
        return (ALL_REGISTERS[index] for index in iter_mask(self._mask))

    def registers(self) -> List[Register]:
        """Members as a sorted list."""
        return list(self)

    def names(self) -> FrozenSet[str]:
        """Member names as a frozen set of strings."""
        return frozenset(register.name for register in self)

    def __repr__(self) -> str:
        members = ", ".join(register.name for register in self)
        return f"{{{members}}}"


#: The empty register set.
EMPTY_SET: RegisterSet = RegisterSet.from_mask(0)

#: The set of all registers.
UNIVERSE: RegisterSet = RegisterSet.from_mask(FULL_MASK)
