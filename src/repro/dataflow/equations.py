"""The Figure-6 equations: labeling a flow-summary edge.

For a flow-summary edge ``E = (N_X, N_Y)``, the paper runs conventional
backward dataflow over the CFG subgraph containing exactly the blocks
on some path from X to Y:

.. code-block:: none

    MAY-USE_IN[B]  = UBD[B] ∪ (MAY-USE_OUT[B] − DEF[B])
    MAY-DEF_IN[B]  = MAY-DEF_OUT[B] ∪ DEF[B]
    MUST-DEF_IN[B] = MUST-DEF_OUT[B] ∪ DEF[B]

    MAY-USE_OUT[B]  = ∪_S MAY-USE_IN[S]     over subgraph successors S
    MAY-DEF_OUT[B]  = ∪_S MAY-DEF_IN[S]
    MUST-DEF_OUT[B] = ∩_S MUST-DEF_IN[S]

The paper initializes every set to ∅.  For the MAY sets (∪ meet) that
is the correct ⊥; for MUST-DEF (∩ meet) a ∅ start computes a least
fixed point that loses must-definitions around loops (a cycle of
∅-initialized blocks can never acquire the defs that every path out of
the cycle performs).  We use the standard must-analysis initialization
instead — interior MUST-DEF starts at ⊤ (every register) and shrinks —
which yields the meet-over-paths solution; the boundary (the target
block's OUT) is ∅ as in the paper.  This is a documented deviation (see
DESIGN.md); it is sound, strictly more precise, and makes the PSG
engine agree exactly with the whole-CFG baseline.

After convergence the edge is labeled with the IN sets at X's start
block(s); a source with several start blocks (a branch node fans out to
many targets) combines them with ∪ for the MAY sets and ∩ for
MUST-DEF.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.dataflow.local import LocalSets
from repro.dataflow.regset import RegisterSet, TRACKED_MASK
from repro.dataflow.solver import WorklistSolver, postorder
from repro.cfg.cfg import BasicBlock

Triple = Tuple[int, int, int]  # (may_use, may_def, must_def) masks

#: Boundary value: the target block's OUT sets (nothing beyond the edge).
_BOUNDARY: Triple = (0, 0, 0)

#: Interior start value: MAY sets at ⊥ (∅), MUST-DEF at ⊤ (see module doc).
_INTERIOR: Triple = (0, 0, TRACKED_MASK)


@dataclass(frozen=True)
class SummaryTriple:
    """An immutable (MAY-USE, MAY-DEF, MUST-DEF) triple of masks."""

    may_use: int = 0
    may_def: int = 0
    must_def: int = 0

    @property
    def may_use_set(self) -> RegisterSet:
        return RegisterSet.from_mask(self.may_use)

    @property
    def may_def_set(self) -> RegisterSet:
        return RegisterSet.from_mask(self.may_def)

    @property
    def must_def_set(self) -> RegisterSet:
        return RegisterSet.from_mask(self.must_def)

    def is_consistent(self) -> bool:
        """MUST-DEF must be a subset of MAY-DEF."""
        return self.must_def & ~self.may_def == 0

    def __repr__(self) -> str:
        return (
            f"SummaryTriple(may_use={self.may_use_set!r}, "
            f"may_def={self.may_def_set!r}, must_def={self.must_def_set!r})"
        )


def _combine(left: Triple, right: Triple) -> Triple:
    return (left[0] | right[0], left[1] | right[1], left[2] & right[2])


def solve_summary_subgraph(
    blocks: Sequence[BasicBlock],
    local_sets: Sequence[LocalSets],
    subgraph: Set[int],
    blocked: Set[int],
) -> Dict[int, SummaryTriple]:
    """Solve the Figure-6 equations over one subgraph.

    ``subgraph`` holds the block indices on some X→Y path; ``blocked``
    holds the blocks whose outgoing arcs are cut (call and branch-node
    blocks).  Returns the converged IN triple for every subgraph block;
    the caller labels the edge from the start block(s).
    """
    members = sorted(subgraph)
    dense: Dict[int, int] = {index: i for i, index in enumerate(members)}
    edges: List[Tuple[int, int]] = []
    for index in members:
        if index in blocked:
            continue
        for successor in blocks[index].successors:
            if successor in subgraph:
                edges.append((dense[index], dense[successor]))

    ubd = [local_sets[index].ubd_mask for index in members]
    defs = [local_sets[index].def_mask for index in members]

    def transfer(node: int, out_state: Triple) -> Triple:
        may_use_out, may_def_out, must_def_out = out_state
        block_def = defs[node]
        return (
            ubd[node] | (may_use_out & ~block_def),
            may_def_out | block_def,
            must_def_out | block_def,
        )

    solver: WorklistSolver[Triple] = WorklistSolver(len(members), edges)
    successor_lists = [solver.successors(i) for i in range(len(members))]
    order = postorder(len(members), successor_lists, range(len(members)))
    states = solver.solve(
        transfer=transfer,
        combine=_combine,
        boundary=_BOUNDARY,
        initial=_INTERIOR,
        order=order,
    )
    return {
        index: SummaryTriple(*states[dense[index]])
        for index in members
    }


def label_from_starts(
    solution: Dict[int, SummaryTriple], starts: Sequence[int]
) -> SummaryTriple:
    """Combine the IN triples at an edge source's start blocks.

    MAY sets union over the fan-out; MUST-DEF intersects (a register is
    must-defined along the edge only if it is must-defined from *every*
    start block).
    """
    present = [solution[s] for s in starts if s in solution]
    if not present:
        return SummaryTriple()
    may_use = 0
    may_def = 0
    must_def = present[0].must_def
    for triple in present:
        may_use |= triple.may_use
        may_def |= triple.may_def
        must_def &= triple.must_def
    return SummaryTriple(may_use=may_use, may_def=may_def, must_def=must_def)


#: Interned SummaryTriple instances, keyed by raw masks.  Distinct
#: triples per program are few (labels repeat heavily across edges), so
#: the cache stays small; it is process-wide and never evicted.
_TRIPLE_CACHE: Dict[Triple, SummaryTriple] = {}


def intern_triple(may_use: int, may_def: int, must_def: int) -> SummaryTriple:
    """The canonical :class:`SummaryTriple` for three masks."""
    key = (may_use, may_def, must_def)
    triple = _TRIPLE_CACHE.get(key)
    if triple is None:
        triple = SummaryTriple(may_use, may_def, must_def)
        _TRIPLE_CACHE[key] = triple
    return triple


def _tarjan_sccs(successors: Sequence[Sequence[int]]) -> List[int]:
    """Strongly connected components of a dense digraph (iterative).

    Returns ``comp_of`` mapping every node to its component id, with
    ids assigned in Tarjan emission order — a component is numbered
    only after every component reachable from it.  Ascending component
    id is therefore a successors-first (reverse topological) order,
    exactly the order a backward dataflow pass wants.
    """
    n = len(successors)
    index_of = [0] * n  # 0 = unvisited (indices start at 1)
    lowlink = [0] * n
    on_stack = bytearray(n)
    scc_stack: List[int] = []
    comp_of = [-1] * n
    counter = 1
    comps = 0
    for root in range(n):
        if index_of[root]:
            continue
        work: List[Tuple[int, int]] = [(root, 0)]
        while work:
            node, child_pos = work[-1]
            if child_pos == 0:
                index_of[node] = lowlink[node] = counter
                counter += 1
                scc_stack.append(node)
                on_stack[node] = 1
            descended = False
            children = successors[node]
            while child_pos < len(children):
                child = children[child_pos]
                child_pos += 1
                if not index_of[child]:
                    work[-1] = (node, child_pos)
                    work.append((child, 0))
                    descended = True
                    break
                if on_stack[child] and index_of[child] < lowlink[node]:
                    lowlink[node] = index_of[child]
            if descended:
                continue
            work.pop()
            if lowlink[node] == index_of[node]:
                while True:
                    member = scc_stack.pop()
                    on_stack[member] = 0
                    comp_of[member] = comps
                    if member == node:
                        break
                comps += 1
            if work:
                parent = work[-1][0]
                if lowlink[node] < lowlink[parent]:
                    lowlink[parent] = lowlink[node]
    return comp_of


class BatchedLabeler:
    """Per-routine batched Figure-6 solver shared across all targets.

    The per-target strategy rebuilds the whole dataflow problem — dense
    remapping, edge list, solver, traversal order — once per target, so
    a routine with T targets re-applies every shared block's transfer
    up to T times with fresh allocations each time.  This class builds
    the boundary-cut graph structure *once* per routine:

    * cut successor/predecessor lists (a blocked block's outgoing arcs
      are removed, exactly the ``blocked`` semantics of
      :func:`solve_summary_subgraph`);
    * per-block UBD/DEF masks;
    * a Tarjan SCC decomposition of the cut graph whose component ids
      ascend in successors-first order.

    Each target's region (``backward_reachable(target)`` on the cut
    graph) is then solved in a single bottom-up sweep: components are
    visited in ascending id order, so every in-region successor of a
    block is final before the block's own transfer runs.  Acyclic
    components (a lone block with no self-loop) take exactly one
    transfer application; only components that actually contain a cycle
    fall back to a local worklist.  A single-entry per-block memo
    reuses the transfer result when an overlapping target produces the
    same OUT triple, which is the common case for shared suffixes.

    **Equivalence.** The Figure-6 system splits into three independent
    problems: MAY-USE and MAY-DEF are least fixed points from ∅ under
    ∪-combine, MUST-DEF is a greatest fixed point from ⊤ under
    ∩-combine (see the module docstring for the ⊤ initialization).
    Each has a *unique* lfp/gfp for a given boundary, and hierarchical
    iteration — solving downstream SCCs to completion before upstream
    ones — computes exactly that fixed point, so the batched labels are
    bit-identical to the per-target and per-edge strategies (the
    labeling-equivalence tests gate this).
    """

    def __init__(
        self,
        blocks: Sequence[BasicBlock],
        local_sets: Sequence[LocalSets],
        blocked: Set[int],
    ) -> None:
        n = len(blocks)
        cut_succ: List[List[int]] = []
        for index in range(n):
            if index in blocked:
                cut_succ.append([])
            else:
                cut_succ.append(list(blocks[index].successors))
        cut_pred: List[List[int]] = [[] for _ in range(n)]
        for index, succs in enumerate(cut_succ):
            for successor in succs:
                cut_pred[successor].append(index)
        self._cut_succ = cut_succ
        self._cut_pred = cut_pred
        self._ubd = [local_sets[index].ubd_mask for index in range(n)]
        self._defs = [local_sets[index].def_mask for index in range(n)]
        self._comp_of = _tarjan_sccs(cut_succ)
        self._self_loop = bytearray(n)
        for index, succs in enumerate(cut_succ):
            if index in succs:
                self._self_loop[index] = 1
        # Single-entry transfer memo: the last (OUT, IN) pair per block,
        # shared across the targets whose regions overlap.
        self._last_out: List[Optional[Triple]] = [None] * n
        self._last_in: List[Optional[Triple]] = [None] * n

    def region(self, target: int) -> Set[int]:
        """Blocks on some path to ``target`` in the cut graph.

        Identical to ``backward_reachable(blocks, target, blocked)``:
        blocked blocks have no outgoing cut arcs, so they never appear
        as predecessors; the target itself is always a member.
        """
        pred = self._cut_pred
        reached = {target}
        stack = [target]
        while stack:
            block = stack.pop()
            for p in pred[block]:
                if p not in reached:
                    reached.add(p)
                    stack.append(p)
        return reached

    def solve(self, region: Set[int]) -> Dict[int, Triple]:
        """Converged IN triples for every block of one target's region.

        The region's only successor-less member is the target (every
        other member lies on a path to it), so the ∅ boundary emerges
        exactly where :func:`solve_summary_subgraph` applies it.
        """
        comp_of = self._comp_of
        buckets: Dict[int, List[int]] = {}
        for block in region:
            buckets.setdefault(comp_of[block], []).append(block)
        states: Dict[int, Triple] = {}
        cut_succ = self._cut_succ
        ubd = self._ubd
        defs = self._defs
        last_out = self._last_out
        last_in = self._last_in
        for comp_id in sorted(buckets):
            members = buckets[comp_id]
            if len(members) == 1 and not self._self_loop[members[0]]:
                # Acyclic within the region: one transfer application.
                block = members[0]
                out: Optional[Triple] = None
                for successor in cut_succ[block]:
                    succ_state = states.get(successor)
                    if succ_state is None:
                        continue
                    if out is None:
                        out = succ_state
                    else:
                        out = (
                            out[0] | succ_state[0],
                            out[1] | succ_state[1],
                            out[2] & succ_state[2],
                        )
                if out is None:
                    out = _BOUNDARY
                if out == last_out[block]:
                    states[block] = last_in[block]  # type: ignore[assignment]
                else:
                    block_def = defs[block]
                    value = (
                        ubd[block] | (out[0] & ~block_def),
                        out[1] | block_def,
                        out[2] | block_def,
                    )
                    last_out[block] = out
                    last_in[block] = value
                    states[block] = value
            else:
                # The component carries a cycle: local worklist.  The
                # fixed point is unique, so iteration order only
                # affects convergence speed, not the answer.
                for block in members:
                    states[block] = _INTERIOR
                in_comp = set(members)
                queue = deque(members)
                queued = set(members)
                while queue:
                    block = queue.popleft()
                    queued.discard(block)
                    out = None
                    for successor in cut_succ[block]:
                        succ_state = states.get(successor)
                        if succ_state is None:
                            continue
                        if out is None:
                            out = succ_state
                        else:
                            out = (
                                out[0] | succ_state[0],
                                out[1] | succ_state[1],
                                out[2] & succ_state[2],
                            )
                    if out is None:
                        out = _BOUNDARY
                    block_def = defs[block]
                    value = (
                        ubd[block] | (out[0] & ~block_def),
                        out[1] | block_def,
                        out[2] | block_def,
                    )
                    if value != states[block]:
                        states[block] = value
                        for p in self._cut_pred[block]:
                            if p in in_comp and p not in queued:
                                queued.add(p)
                                queue.append(p)
        return states

    @staticmethod
    def label(solution: Dict[int, Triple], starts: Sequence[int]) -> SummaryTriple:
        """Interned label from the IN triples at the start blocks.

        Same combine as :func:`label_from_starts` (∪ for MAY sets, ∩
        for MUST-DEF over the fan-out), operating on raw triples.
        """
        may_use = 0
        may_def = 0
        must_def = -1
        for start in starts:
            triple = solution.get(start)
            if triple is None:
                continue
            may_use |= triple[0]
            may_def |= triple[1]
            must_def &= triple[2]
        if must_def == -1:
            return intern_triple(0, 0, 0)
        return intern_triple(may_use, may_def, must_def)
