"""The Figure-6 equations: labeling a flow-summary edge.

For a flow-summary edge ``E = (N_X, N_Y)``, the paper runs conventional
backward dataflow over the CFG subgraph containing exactly the blocks
on some path from X to Y:

.. code-block:: none

    MAY-USE_IN[B]  = UBD[B] ∪ (MAY-USE_OUT[B] − DEF[B])
    MAY-DEF_IN[B]  = MAY-DEF_OUT[B] ∪ DEF[B]
    MUST-DEF_IN[B] = MUST-DEF_OUT[B] ∪ DEF[B]

    MAY-USE_OUT[B]  = ∪_S MAY-USE_IN[S]     over subgraph successors S
    MAY-DEF_OUT[B]  = ∪_S MAY-DEF_IN[S]
    MUST-DEF_OUT[B] = ∩_S MUST-DEF_IN[S]

The paper initializes every set to ∅.  For the MAY sets (∪ meet) that
is the correct ⊥; for MUST-DEF (∩ meet) a ∅ start computes a least
fixed point that loses must-definitions around loops (a cycle of
∅-initialized blocks can never acquire the defs that every path out of
the cycle performs).  We use the standard must-analysis initialization
instead — interior MUST-DEF starts at ⊤ (every register) and shrinks —
which yields the meet-over-paths solution; the boundary (the target
block's OUT) is ∅ as in the paper.  This is a documented deviation (see
DESIGN.md); it is sound, strictly more precise, and makes the PSG
engine agree exactly with the whole-CFG baseline.

After convergence the edge is labeled with the IN sets at X's start
block(s); a source with several start blocks (a branch node fans out to
many targets) combines them with ∪ for the MAY sets and ∩ for
MUST-DEF.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence, Set, Tuple

from repro.dataflow.local import LocalSets
from repro.dataflow.regset import RegisterSet, TRACKED_MASK
from repro.dataflow.solver import WorklistSolver, postorder
from repro.cfg.cfg import BasicBlock

Triple = Tuple[int, int, int]  # (may_use, may_def, must_def) masks

#: Boundary value: the target block's OUT sets (nothing beyond the edge).
_BOUNDARY: Triple = (0, 0, 0)

#: Interior start value: MAY sets at ⊥ (∅), MUST-DEF at ⊤ (see module doc).
_INTERIOR: Triple = (0, 0, TRACKED_MASK)


@dataclass(frozen=True)
class SummaryTriple:
    """An immutable (MAY-USE, MAY-DEF, MUST-DEF) triple of masks."""

    may_use: int = 0
    may_def: int = 0
    must_def: int = 0

    @property
    def may_use_set(self) -> RegisterSet:
        return RegisterSet.from_mask(self.may_use)

    @property
    def may_def_set(self) -> RegisterSet:
        return RegisterSet.from_mask(self.may_def)

    @property
    def must_def_set(self) -> RegisterSet:
        return RegisterSet.from_mask(self.must_def)

    def is_consistent(self) -> bool:
        """MUST-DEF must be a subset of MAY-DEF."""
        return self.must_def & ~self.may_def == 0

    def __repr__(self) -> str:
        return (
            f"SummaryTriple(may_use={self.may_use_set!r}, "
            f"may_def={self.may_def_set!r}, must_def={self.must_def_set!r})"
        )


def _combine(states: Sequence[Triple]) -> Triple:
    may_use, may_def, must_def = states[0]
    for other in states[1:]:
        may_use |= other[0]
        may_def |= other[1]
        must_def &= other[2]
    return (may_use, may_def, must_def)


def solve_summary_subgraph(
    blocks: Sequence[BasicBlock],
    local_sets: Sequence[LocalSets],
    subgraph: Set[int],
    blocked: Set[int],
) -> Dict[int, SummaryTriple]:
    """Solve the Figure-6 equations over one subgraph.

    ``subgraph`` holds the block indices on some X→Y path; ``blocked``
    holds the blocks whose outgoing arcs are cut (call and branch-node
    blocks).  Returns the converged IN triple for every subgraph block;
    the caller labels the edge from the start block(s).
    """
    members = sorted(subgraph)
    dense: Dict[int, int] = {index: i for i, index in enumerate(members)}
    edges: List[Tuple[int, int]] = []
    for index in members:
        if index in blocked:
            continue
        for successor in blocks[index].successors:
            if successor in subgraph:
                edges.append((dense[index], dense[successor]))

    ubd = [local_sets[index].ubd_mask for index in members]
    defs = [local_sets[index].def_mask for index in members]

    def transfer(node: int, out_state: Triple) -> Triple:
        may_use_out, may_def_out, must_def_out = out_state
        block_def = defs[node]
        return (
            ubd[node] | (may_use_out & ~block_def),
            may_def_out | block_def,
            must_def_out | block_def,
        )

    solver: WorklistSolver[Triple] = WorklistSolver(len(members), edges)
    successor_lists = [solver.successors(i) for i in range(len(members))]
    order = postorder(len(members), successor_lists, range(len(members)))
    states = solver.solve(
        transfer=transfer,
        combine=_combine,
        boundary=_BOUNDARY,
        initial=_INTERIOR,
        order=order,
    )
    return {
        index: SummaryTriple(*states[dense[index]])
        for index in members
    }


def label_from_starts(
    solution: Dict[int, SummaryTriple], starts: Sequence[int]
) -> SummaryTriple:
    """Combine the IN triples at an edge source's start blocks.

    MAY sets union over the fan-out; MUST-DEF intersects (a register is
    must-defined along the edge only if it is must-defined from *every*
    start block).
    """
    present = [solution[s] for s in starts if s in solution]
    if not present:
        return SummaryTriple()
    may_use = 0
    may_def = 0
    must_def = present[0].must_def
    for triple in present:
        may_use |= triple.may_use
        may_def |= triple.may_def
        must_def &= triple.must_def
    return SummaryTriple(may_use=may_use, may_def=may_def, must_def=must_def)
