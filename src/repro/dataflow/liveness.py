"""Client-side intraprocedural liveness with call summaries.

Section 2 of the paper describes how Spike's optimizations consume the
interprocedural summaries: every call instruction is replaced by a
*call-summary instruction* that uses the registers call-used by the
callee, defines the registers call-defined, and kills the registers
call-killed; every exit gets an *exit instruction* using the registers
live at that exit.  Conventional liveness over the routine then yields
interprocedurally accurate results.

This module implements that liveness.  For the purpose of computing
live registers:

* a call-summary's **gen** set is call-used ∪ the call instruction's
  own register reads (a ``jsr`` reads its target register);
* its **kill** set is call-defined ∪ the call instruction's own writes
  (the return-address register) — only *definite* definitions kill
  liveness, so call-killed (MAY-DEF) does not kill;
* an exit block's live-out is its live-at-exit summary;
* the live-out of a block ending in an unknown indirect jump is the
  full register universe (§3.5).

The per-instruction walk (:func:`instruction_liveness`) gives the
optimizer the live set after every instruction, which is exactly what
dead-code elimination and the register reallocation of Figure 1 need.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.isa.instructions import Instruction
from repro.dataflow.regset import TRACKED_MASK, RegisterSet
from repro.dataflow.solver import WorklistSolver, postorder
from repro.cfg.cfg import ControlFlowGraph, ExitKind, TerminatorKind


@dataclass(frozen=True)
class SiteEffect:
    """Gen/kill masks summarizing a call site for liveness."""

    gen: int
    kill: int


@dataclass
class LivenessResult:
    """Block-level liveness solution for one routine."""

    cfg: ControlFlowGraph
    live_in: List[int]
    live_out: List[int]

    def live_in_set(self, block_index: int) -> RegisterSet:
        return RegisterSet.from_mask(self.live_in[block_index])

    def live_out_set(self, block_index: int) -> RegisterSet:
        return RegisterSet.from_mask(self.live_out[block_index])


def effective_gen_kill(
    instruction: Instruction,
    site_effect: Optional[SiteEffect] = None,
) -> Tuple[int, int]:
    """(gen, kill) masks for one instruction.

    ``site_effect`` must be supplied for call instructions; it already
    reflects the callee's summary.
    """
    gen = 0
    for register in instruction.uses():
        gen |= 1 << register
    kill = 0
    for register in instruction.defs():
        kill |= 1 << register
    if site_effect is not None:
        gen |= site_effect.gen
        kill |= site_effect.kill
    return gen, kill


def solve_liveness(
    cfg: ControlFlowGraph,
    site_effects: Dict[int, SiteEffect],
    exit_live: Dict[int, int],
) -> LivenessResult:
    """Solve block-level liveness for one routine.

    ``site_effects`` maps call-block index -> :class:`SiteEffect`;
    ``exit_live`` maps RETURN-exit block index -> live-at-exit mask.
    HALT exits have nothing live; unknown-jump exits have everything
    live.
    """
    blocks = cfg.blocks
    gen = [0] * len(blocks)
    kill = [0] * len(blocks)
    boundary_out = [0] * len(blocks)
    for block in blocks:
        block_gen = 0
        block_kill = 0
        site = site_effects.get(block.index)
        for offset, instruction in enumerate(block.instructions):
            is_call = (
                block.terminator == TerminatorKind.CALL
                and offset == len(block.instructions) - 1
            )
            instruction_gen, instruction_kill = effective_gen_kill(
                instruction, site if is_call else None
            )
            block_gen |= instruction_gen & ~block_kill
            block_kill |= instruction_kill
        gen[block.index] = block_gen
        kill[block.index] = block_kill
        exit_kind = cfg.exit_kind_of(block.index)
        if exit_kind == ExitKind.RETURN:
            boundary_out[block.index] = exit_live.get(block.index, 0)
        elif exit_kind == ExitKind.UNKNOWN_JUMP:
            boundary_out[block.index] = TRACKED_MASK
        elif exit_kind == ExitKind.HALT:
            boundary_out[block.index] = 0

    edges = [
        (block.index, successor)
        for block in blocks
        for successor in block.successors
    ]

    def transfer(node: int, out_mask: int) -> int:
        return gen[node] | (out_mask & ~kill[node])

    def combine(left: int, right: int) -> int:
        return left | right

    solver: WorklistSolver[int] = WorklistSolver(len(blocks), edges)
    successor_lists = [list(block.successors) for block in blocks]
    order = postorder(len(blocks), successor_lists, [cfg.entry_index])

    # Exit blocks have no successors; their OUT is their boundary mask.
    def transfer_with_boundary(node: int, out_mask: int) -> int:
        if not blocks[node].successors:
            out_mask = boundary_out[node]
        return transfer(node, out_mask)

    live_in = solver.solve(
        transfer=transfer_with_boundary,
        combine=combine,
        boundary=0,
        initial=0,
        order=order,
    )
    live_out = []
    for block in blocks:
        if block.successors:
            mask = 0
            for successor in block.successors:
                mask |= live_in[successor]
        else:
            mask = boundary_out[block.index]
        live_out.append(mask)
    return LivenessResult(cfg=cfg, live_in=live_in, live_out=live_out)


def instruction_liveness(
    result: LivenessResult,
    block_index: int,
    site_effects: Dict[int, SiteEffect],
) -> List[int]:
    """Live-after mask for each instruction of one block.

    ``returned[i]`` is the set of registers live immediately *after*
    ``block.instructions[i]``.  Walks backward from the block's
    live-out.
    """
    cfg = result.cfg
    block = cfg.blocks[block_index]
    site = site_effects.get(block_index)
    live_after: List[int] = [0] * len(block.instructions)
    mask = result.live_out[block_index]
    for offset in range(len(block.instructions) - 1, -1, -1):
        live_after[offset] = mask
        instruction = block.instructions[offset]
        is_call = (
            block.terminator == TerminatorKind.CALL
            and offset == len(block.instructions) - 1
        )
        gen, kill = effective_gen_kill(instruction, site if is_call else None)
        mask = gen | (mask & ~kill)
    return live_after
