"""Dataflow foundations: register sets, local sets, and solvers.

* :mod:`repro.dataflow.regset` — immutable register sets backed by int
  bitmasks (the "bit vector" of classic dataflow); all analyses
  manipulate raw masks in their inner loops and expose
  :class:`RegisterSet` at API boundaries.
* :mod:`repro.dataflow.local` — per-basic-block DEF and UBD
  (used-before-defined) sets, the paper's "Initialization" stage.
* :mod:`repro.dataflow.solver` — a generic iterative worklist solver for
  monotone bit-vector problems over arbitrary graphs.
* :mod:`repro.dataflow.equations` — the Figure-6 backward equations that
  label flow-summary edges (MAY-USE / MAY-DEF / MUST-DEF over a CFG
  subgraph).
* :mod:`repro.dataflow.liveness` — conventional intraprocedural liveness,
  used by the optimizer clients once call-summary information is
  available.
"""

from repro.dataflow.regset import RegisterSet, EMPTY_SET, UNIVERSE
from repro.dataflow.local import LocalSets, compute_local_sets
from repro.dataflow.solver import WorklistSolver
from repro.dataflow.equations import SummaryTriple, solve_summary_subgraph

__all__ = [
    "EMPTY_SET",
    "LocalSets",
    "RegisterSet",
    "SummaryTriple",
    "UNIVERSE",
    "WorklistSolver",
    "compute_local_sets",
    "solve_summary_subgraph",
]
