"""Per-basic-block local dataflow sets.

The paper's "Initialization" stage "consists mainly of the time spent
generating the DEF and UBD sets for each basic block" (§4):

* ``DEF[B]`` — registers defined (written) somewhere in block ``B``;
* ``UBD[B]`` — registers used before being defined in ``B`` (the
  registers whose incoming values the block reads).

Both are single masks computed in one forward pass over the block.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Sequence

from repro.isa.instructions import Instruction
from repro.dataflow.regset import RegisterSet
from repro.cfg.cfg import BasicBlock, ControlFlowGraph


@dataclass(frozen=True)
class LocalSets:
    """DEF and UBD masks for one basic block."""

    def_mask: int
    ubd_mask: int

    @property
    def defs(self) -> RegisterSet:
        """Registers defined in the block."""
        return RegisterSet.from_mask(self.def_mask)

    @property
    def used_before_defined(self) -> RegisterSet:
        """Registers read before any write in the block."""
        return RegisterSet.from_mask(self.ubd_mask)


def local_sets_of_instructions(instructions: Iterable[Instruction]) -> LocalSets:
    """Compute DEF/UBD over an instruction sequence."""
    def_mask = 0
    ubd_mask = 0
    for instruction in instructions:
        use_mask = 0
        for register in instruction.uses():
            use_mask |= 1 << register
        ubd_mask |= use_mask & ~def_mask
        for register in instruction.defs():
            def_mask |= 1 << register
    return LocalSets(def_mask=def_mask, ubd_mask=ubd_mask)


def compute_local_sets(cfg: ControlFlowGraph) -> List[LocalSets]:
    """DEF/UBD for every block of ``cfg``, indexed by block index."""
    return [local_sets_of_instructions(block.instructions) for block in cfg.blocks]


def compute_program_local_sets(
    cfgs: Dict[str, ControlFlowGraph]
) -> Dict[str, List[LocalSets]]:
    """DEF/UBD for every block of every routine."""
    return {name: compute_local_sets(cfg) for name, cfg in cfgs.items()}
