"""A simple cycle-cost model for executed programs.

The paper's performance claims are wall-clock measurements on an Alpha
21164, where the instructions the Figure-1 optimizations remove are not
average instructions: spills and save/restores are *memory* operations
(multi-cycle loads/stores), and call overhead is branch-heavy.  A raw
dynamic instruction count therefore understates the benefit.

This model weights each executed opcode with a latency in the spirit of
the 21164's in-order pipeline (loads 3 cycles assuming D-cache hits,
stores 2, integer multiply 8, control transfers 2 for the fetch bubble,
single-cycle ALU otherwise).  It is deliberately coarse — the point is
a defensible second axis ("estimated cycles") next to instruction
counts, not a microarchitectural simulator.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Mapping

from repro.isa.instructions import ControlKind, Format, Opcode
from repro.sim.interpreter import ExecutionResult


def _default_weights() -> Dict[str, int]:
    weights: Dict[str, int] = {}
    for opcode in Opcode:
        if opcode in (Opcode.LDQ, Opcode.LDT):
            weights[opcode.mnemonic] = 3
        elif opcode in (Opcode.STQ, Opcode.STT):
            weights[opcode.mnemonic] = 2
        elif opcode in (Opcode.MULQ, Opcode.MULT):
            weights[opcode.mnemonic] = 8
        elif opcode.control != ControlKind.FALLTHROUGH:
            weights[opcode.mnemonic] = 2
        elif opcode.format in (Format.OPERATE, Format.OPERATE_FP) or (
            opcode in (Opcode.LDA, Opcode.LDAH)
        ):
            weights[opcode.mnemonic] = 1
        else:
            weights[opcode.mnemonic] = 1
    return weights


@dataclass(frozen=True)
class CostModel:
    """Per-mnemonic cycle weights; unknown mnemonics cost ``default``."""

    weights: Mapping[str, int] = field(default_factory=_default_weights)
    default: int = 1

    def cost_of(self, mnemonic: str) -> int:
        return self.weights.get(mnemonic, self.default)

    def estimate_cycles(self, result: ExecutionResult) -> int:
        """Weighted cycle estimate for one execution."""
        total = 0
        for mnemonic, count in result.opcode_counts.items():
            total += self.cost_of(mnemonic) * count
        return total


#: The default 21164-flavoured model.
ALPHA_21164 = CostModel()


def cycle_improvement(
    before: ExecutionResult,
    after: ExecutionResult,
    model: CostModel = ALPHA_21164,
) -> float:
    """Fractional cycle reduction between two runs (0.07 = 7%)."""
    baseline = model.estimate_cycles(before)
    if baseline == 0:
        return 0.0
    return (baseline - model.estimate_cycles(after)) / baseline
