"""Execution substrate: an interpreter for the Alpha-like ISA.

The interpreter plays two roles in the reproduction:

* **correctness oracle** — an optimized program must produce the same
  observable behaviour (OUTPUT stream, exit value) as the original, and
  trace mode records per-dynamic-call register usage so the soundness
  of the interprocedural summaries can be checked against real
  executions;
* **performance meter** — dynamic instruction counts before and after
  optimization quantify the improvement the paper's §1 attributes to
  summary-enabled optimizations (5-10%, driven largely by call
  overhead).
"""

from repro.sim.interpreter import (
    CallRecord,
    ExecutionError,
    ExecutionResult,
    Interpreter,
    run_program,
)
from repro.sim.cost_model import ALPHA_21164, CostModel, cycle_improvement

__all__ = [
    "ALPHA_21164",
    "CallRecord",
    "CostModel",
    "ExecutionError",
    "ExecutionResult",
    "Interpreter",
    "cycle_improvement",
    "run_program",
]
