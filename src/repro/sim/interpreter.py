"""A functional interpreter for decoded programs.

Executes a :class:`~repro.program.model.Program` the way the hardware
would: a program counter walks the flat address space, calls write the
return address into the link register and returns jump through it, and
memory is a flat 64-bit-word store holding the data section, the stack
and anything the program writes.

Simplifications (documented substitutions, see DESIGN.md):

* floating-point registers hold 64-bit integers and the FP arithmetic
  opcodes behave like their integer counterparts — the dataflow
  analysis only cares about *which* registers are read and written,
  never about their values;
* memory accesses must be 8-byte aligned (the generator and the
  examples only emit aligned frames).

Trace mode additionally records, for every dynamic call, the registers
read-before-written and written during the call's extent and the
registers whose values differ across it; the property-based test suite
checks those against the interprocedural summaries.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.isa.encoding import INSTRUCTION_SIZE
from repro.isa.instructions import ControlKind, Instruction, Opcode
from repro.isa.registers import RETURN_ADDRESS, STACK_POINTER, RegisterFile
from repro.program.model import Program

_MASK64 = (1 << 64) - 1

#: Default stack top (grows downward).
DEFAULT_STACK_BASE = 0x7FFF_FF00

#: Register index of ``a0``, the OUTPUT operand.
_A0 = 16


class ExecutionError(RuntimeError):
    """Raised for invalid execution: bad PC, misalignment, runaway."""


@dataclass
class CallRecord:
    """Register usage observed during one dynamic call (trace mode)."""

    callee: str
    #: Registers read before being written during the call's extent.
    read_before_write: int
    #: Registers written during the call's extent.
    written: int
    #: Registers whose value at return differs from the value at call.
    changed: int


@dataclass
class _Frame:
    callee: str
    return_pc: int
    entry_snapshot: Tuple[int, ...]
    read_before_write: int = 0
    written: int = 0


@dataclass
class ExecutionResult:
    """Everything observable about one run."""

    outputs: List[int]
    steps: int
    halted: bool
    exit_value: int
    final_registers: Tuple[int, ...]
    opcode_counts: Dict[str, int] = field(default_factory=dict)
    call_records: List[CallRecord] = field(default_factory=list)

    @property
    def observable(self) -> Tuple[Tuple[int, ...], int]:
        """The behaviour two runs must share to count as equivalent."""
        return (tuple(self.outputs), self.exit_value)


class Interpreter:
    """Executes one program; create a fresh instance per run."""

    def __init__(
        self,
        program: Program,
        max_steps: int = 5_000_000,
        trace_calls: bool = False,
        stack_base: int = DEFAULT_STACK_BASE,
    ) -> None:
        self.program = program
        self.max_steps = max_steps
        self.trace_calls = trace_calls
        self.registers = RegisterFile()
        self.memory: Dict[int, int] = {}
        self._load_data(program)
        self.registers.write(STACK_POINTER, stack_base)
        self.outputs: List[int] = []
        self.opcode_counts: Dict[str, int] = {}
        self.call_records: List[CallRecord] = []
        self._frames: List[_Frame] = []
        # Pre-index instructions by absolute address.
        self._by_address: Dict[int, Instruction] = {}
        for routine in program:
            for index, instruction in enumerate(routine.instructions):
                self._by_address[routine.address_of(index)] = instruction

    def _load_data(self, program: Program) -> None:
        data = program.data
        base = program.data_base
        for offset in range(0, len(data) - len(data) % 8, 8):
            self.memory[base + offset] = int.from_bytes(
                data[offset : offset + 8], "little"
            )

    # ------------------------------------------------------------------
    # Memory
    # ------------------------------------------------------------------

    def load_quad(self, address: int) -> int:
        if address % 8:
            raise ExecutionError(f"unaligned load at {address:#x}")
        return self.memory.get(address, 0)

    def store_quad(self, address: int, value: int) -> None:
        if address % 8:
            raise ExecutionError(f"unaligned store at {address:#x}")
        self.memory[address] = value & _MASK64

    # ------------------------------------------------------------------
    # Tracing helpers
    # ------------------------------------------------------------------

    def _trace_read(self, mask: int) -> None:
        if self._frames:
            frame = self._frames[-1]
            frame.read_before_write |= mask & ~frame.written

    def _trace_write(self, mask: int) -> None:
        if self._frames:
            self._frames[-1].written |= mask

    def _trace_call(self, callee: str, return_pc: int) -> None:
        if self.trace_calls:
            self._frames.append(
                _Frame(
                    callee=callee,
                    return_pc=return_pc,
                    entry_snapshot=self.registers.snapshot(),
                )
            )

    def _trace_return(self, target_pc: int) -> None:
        if not self.trace_calls:
            return
        # Pop every frame whose return point we just reached (a RET can
        # conceptually return through several frames only in nonconforming
        # code; normal code pops exactly one).
        if self._frames and self._frames[-1].return_pc == target_pc:
            frame = self._frames.pop()
            snapshot = self.registers.snapshot()
            changed = 0
            for index, (before, after) in enumerate(
                zip(frame.entry_snapshot, snapshot)
            ):
                if before != after:
                    changed |= 1 << index
            self.call_records.append(
                CallRecord(
                    callee=frame.callee,
                    read_before_write=frame.read_before_write,
                    written=frame.written,
                    changed=changed,
                )
            )
            if self._frames:
                parent = self._frames[-1]
                parent.read_before_write |= (
                    frame.read_before_write & ~parent.written
                )
                parent.written |= frame.written

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------

    def run(self, entry: Optional[str] = None) -> ExecutionResult:
        """Execute from ``entry`` (default: the program's entry routine)."""
        program = self.program
        registers = self.registers
        pc = program.routine(entry or program.entry).address
        steps = 0
        halted = False
        counts = self.opcode_counts
        while True:
            instruction = self._by_address.get(pc)
            if instruction is None:
                raise ExecutionError(f"PC {pc:#x} is not executable code")
            steps += 1
            if steps > self.max_steps:
                raise ExecutionError(f"exceeded {self.max_steps} steps")
            opcode = instruction.opcode
            mnemonic = opcode.mnemonic
            counts[mnemonic] = counts.get(mnemonic, 0) + 1
            if self.trace_calls:
                use_mask = 0
                for r in instruction.uses():
                    use_mask |= 1 << r
                self._trace_read(use_mask)
            next_pc = pc + INSTRUCTION_SIZE
            control = opcode.control

            if control == ControlKind.FALLTHROUGH:
                if opcode is Opcode.OUTPUT:
                    self.outputs.append(registers.read(_A0))
                else:
                    self._execute_straightline(instruction)
            elif control == ControlKind.COND_BRANCH:
                if self._branch_taken(instruction):
                    next_pc += instruction.displacement * INSTRUCTION_SIZE
            elif control == ControlKind.UNCOND_BRANCH:
                registers.write(instruction.ra, next_pc)
                next_pc += instruction.displacement * INSTRUCTION_SIZE
            elif control == ControlKind.CALL_DIRECT:
                registers.write(instruction.ra, next_pc)
                target = next_pc + instruction.displacement * INSTRUCTION_SIZE
                self._note_write(instruction)
                callee = program.routine_at(target)
                self._trace_call(callee.name if callee else f"{target:#x}", next_pc)
                next_pc = target
            elif control == ControlKind.CALL_INDIRECT:
                target = registers.read(instruction.rb)
                registers.write(instruction.ra, next_pc)
                self._note_write(instruction)
                callee = program.routine_at(target)
                self._trace_call(callee.name if callee else f"{target:#x}", next_pc)
                next_pc = target
            elif control == ControlKind.RETURN:
                target = registers.read(instruction.rb)
                registers.write(instruction.ra, next_pc)
                self._note_write(instruction)
                self._trace_return(target)
                next_pc = target
            elif control == ControlKind.INDIRECT_JUMP:
                target = registers.read(instruction.rb)
                registers.write(instruction.ra, next_pc)
                self._note_write(instruction)
                next_pc = target
            elif control == ControlKind.HALT:
                halted = True
            else:  # pragma: no cover - exhaustive
                raise AssertionError(control)

            if halted:
                break
            pc = next_pc

        return ExecutionResult(
            outputs=self.outputs,
            steps=steps,
            halted=halted,
            exit_value=registers.read(0),
            final_registers=registers.snapshot(),
            opcode_counts=counts,
            call_records=self.call_records,
        )

    def _note_write(self, instruction: Instruction) -> None:
        if self.trace_calls:
            mask = 0
            for r in instruction.defs():
                mask |= 1 << r
            self._trace_write(mask)

    def _branch_taken(self, instruction: Instruction) -> bool:
        value = self.registers.read_signed(instruction.ra)
        opcode = instruction.opcode
        if opcode is Opcode.BEQ or opcode is Opcode.FBEQ:
            return value == 0
        if opcode is Opcode.BNE or opcode is Opcode.FBNE:
            return value != 0
        if opcode is Opcode.BLT:
            return value < 0
        if opcode is Opcode.BLE:
            return value <= 0
        if opcode is Opcode.BGT:
            return value > 0
        if opcode is Opcode.BGE:
            return value >= 0
        if opcode is Opcode.BLBC:
            return (value & 1) == 0
        if opcode is Opcode.BLBS:
            return (value & 1) == 1
        raise AssertionError(opcode)  # pragma: no cover

    def _execute_straightline(self, instruction: Instruction) -> None:
        registers = self.registers
        opcode = instruction.opcode

        if opcode is Opcode.LDA:
            value = registers.read(instruction.rb) + instruction.displacement
            registers.write(instruction.ra, value)
        elif opcode is Opcode.LDAH:
            value = registers.read(instruction.rb) + (
                instruction.displacement << 16
            )
            registers.write(instruction.ra, value)
        elif opcode in (Opcode.LDQ, Opcode.LDT):
            address = (
                registers.read(instruction.rb) + instruction.displacement
            ) & _MASK64
            registers.write(instruction.ra, self.load_quad(address))
        elif opcode in (Opcode.STQ, Opcode.STT):
            address = (
                registers.read(instruction.rb) + instruction.displacement
            ) & _MASK64
            self.store_quad(address, registers.read(instruction.ra))
        else:
            self._execute_operate(instruction)
        self._note_write(instruction)

    def _execute_operate(self, instruction: Instruction) -> None:
        registers = self.registers
        opcode = instruction.opcode
        a = registers.read(instruction.ra)
        if instruction.literal is not None:
            b = instruction.literal
        else:
            b = registers.read(instruction.rb)
        a_signed = a - (1 << 64) if a >= 1 << 63 else a
        b_signed = b - (1 << 64) if b >= 1 << 63 else b

        if opcode in (Opcode.ADDQ, Opcode.ADDT):
            value = a + b
        elif opcode in (Opcode.SUBQ, Opcode.SUBT):
            value = a - b
        elif opcode in (Opcode.MULQ, Opcode.MULT):
            value = a * b
        elif opcode is Opcode.AND:
            value = a & b
        elif opcode is Opcode.BIC:
            value = a & ~b
        elif opcode is Opcode.BIS:
            value = a | b
        elif opcode is Opcode.ORNOT:
            value = a | (~b & _MASK64)
        elif opcode is Opcode.XOR:
            value = a ^ b
        elif opcode is Opcode.EQV:
            value = ~(a ^ b) & _MASK64
        elif opcode is Opcode.SLL:
            value = a << (b & 63)
        elif opcode is Opcode.SRL:
            value = a >> (b & 63)
        elif opcode is Opcode.SRA:
            value = a_signed >> (b & 63)
        elif opcode in (Opcode.CMPEQ, Opcode.CMPTEQ):
            value = 1 if a == b else 0
        elif opcode in (Opcode.CMPLT, Opcode.CMPTLT):
            value = 1 if a_signed < b_signed else 0
        elif opcode is Opcode.CMPLE:
            value = 1 if a_signed <= b_signed else 0
        elif opcode is Opcode.CMPULT:
            value = 1 if a < b else 0
        elif opcode is Opcode.CMPULE:
            value = 1 if a <= b else 0
        elif opcode is Opcode.CMOVEQ:
            value = b if a == 0 else registers.read(instruction.rc)
        elif opcode is Opcode.CMOVNE:
            value = b if a != 0 else registers.read(instruction.rc)
        elif opcode in (Opcode.CPYS, Opcode.ITOFT, Opcode.FTOIT):
            # Register-file transfers: value moves unchanged (CPYS with
            # identical operands is the canonical FP move).
            value = b if opcode is Opcode.CPYS else a
        else:  # pragma: no cover - exhaustive over operate opcodes
            raise AssertionError(opcode)
        registers.write(instruction.rc, value)


def run_program(
    program: Program,
    entry: Optional[str] = None,
    max_steps: int = 5_000_000,
    trace_calls: bool = False,
) -> ExecutionResult:
    """Convenience wrapper: build an interpreter and run once."""
    interpreter = Interpreter(
        program, max_steps=max_steps, trace_calls=trace_calls
    )
    return interpreter.run(entry)
