"""Minimal program edits, for exercising incremental re-analysis.

The incremental engine's tests and benchmarks need a stand-in for "the
optimizer edited this routine": a change that is decodable, keeps the
CFG shape intact (no control-flow or displacement rewrites), and
perturbs the routine's register usage enough to be visible in its
summaries.  Retargeting one ALU source register does exactly that.
"""

from __future__ import annotations

import dataclasses

from repro.isa.instructions import ControlKind, Opcode
from repro.isa.registers import ZERO_REGISTER
from repro.program.model import Program, Routine

#: Register-form ALU opcodes whose ``ra`` source is safe to retarget.
_MUTABLE_OPCODES = (Opcode.ADDQ, Opcode.SUBQ, Opcode.AND, Opcode.XOR)


def perturb_routine(program: Program, name: str) -> Program:
    """A copy of ``program`` with one instruction of ``name`` edited.

    The first register-form ALU instruction of the routine has its
    ``ra`` source register retargeted (never to/from the zero
    register), changing the code bytes — and usually the dataflow
    facts — while leaving every address, branch and call untouched.
    Raises :class:`ValueError` when the routine has no such
    instruction.
    """
    victim = program.routine(name)
    instructions = list(victim.instructions)
    for index, instruction in enumerate(instructions):
        if (
            instruction.opcode not in _MUTABLE_OPCODES
            or instruction.opcode.control != ControlKind.FALLTHROUGH
            or instruction.literal is not None
            or instruction.ra == ZERO_REGISTER
        ):
            continue
        replacement = (instruction.ra + 3) % (ZERO_REGISTER - 1)
        instructions[index] = dataclasses.replace(instruction, ra=replacement)
        break
    else:
        raise ValueError(f"routine {name!r} has no register-form ALU instruction")
    routines = [
        Routine(
            name=routine.name,
            address=routine.address,
            instructions=instructions if routine.name == name
            else routine.instructions,
            exported=routine.exported,
        )
        for routine in program.routines
    ]
    return Program(
        routines=routines,
        entry=program.entry,
        jump_targets=program.jump_targets,
        data=program.data,
        data_base=program.data_base,
        jump_table_locations=program.jump_table_locations,
        data_relocations=program.data_relocations,
        call_target_hints=program.call_target_hints,
    )


def _routine_is_editable(routine: Routine) -> bool:
    return any(
        instruction.opcode in _MUTABLE_OPCODES
        and instruction.opcode.control == ControlKind.FALLTHROUGH
        and instruction.literal is None
        and instruction.ra != ZERO_REGISTER
        for instruction in routine.instructions
    )


def editable_routines(program: Program, skip_entry: bool = True) -> list:
    """Every routine :func:`perturb_routine` can edit, in program order.

    The load driver's edit-replay engine records a seeded trace over
    this list; it must be deterministic for a given program.
    """
    return [
        routine.name
        for routine in program.routines
        if not (skip_entry and routine.name == program.entry)
        and _routine_is_editable(routine)
    ]


def first_editable_routine(program: Program, skip_entry: bool = True) -> str:
    """The name of a routine :func:`perturb_routine` can edit."""
    for routine in program.routines:
        if skip_entry and routine.name == program.entry:
            continue
        if _routine_is_editable(routine):
            return routine.name
    raise ValueError("no editable routine in program")
