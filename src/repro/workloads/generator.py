"""Deterministic synthetic program generator.

Given a :class:`~repro.workloads.shapes.BenchmarkShape`, produce an
executable image whose structure matches the shape: routine count,
calls / branches / exits per routine, instruction density, and — for
the benchmarks whose Table-4 branch-node reductions are large —
multiway branches inside loops with calls at each target (the exact
structure §3.6 motivates).

The generated code is *conforming and executable*:

* every routine honors the NT-Alpha calling standard — stack frames,
  ``ra`` and callee-saved registers saved in the prologue and restored
  on every exit, arguments in ``a0``/``a1``, results in ``v0``;
* recursion and call fan-out terminate: callers pass a *budget* in
  ``a0``, kept in a callee-saved register, decremented before every
  call, and calls are skipped once it reaches zero — so the dynamic
  call tree is finite and the interpreter can run any generated
  program end to end;
* the register-allocation patterns the Figure-1 optimizations target
  occur naturally: values spilled around calls (1c), values held in
  callee-saved registers across calls (1d), and occasional dead
  definitions (1a/1b);
* a fraction of calls go through function-pointer tables in the data
  section — opaque to the analysis (§3.5's unknown-call path) yet
  valid at run time; routines reachable that way are exported so the
  analysis treats their callers conservatively.

Everything is driven by a seeded :class:`random.Random`, so a given
``(shape, config)`` always yields the identical image.
"""

from __future__ import annotations

import math
import random
import zlib
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.program.asm import Assembler
from repro.program.disasm import disassemble_image
from repro.program.image import ExecutableImage
from repro.program.model import Program
from repro.workloads.shapes import BenchmarkShape, shape_by_name

# Register roles used by generated code (software names).
_SCRATCH = ("t0", "t1", "t2")       # filler arithmetic
_LOOP_TEMP = "t4"                    # loop counter (call-free loops)
_LOOP_SAVED = "s3"                   # loop counter (loops containing calls)
_SPILL_REGS = ("t5", "t6", "t7")     # figure-1c spill patterns
_DEAD_REG = "t9"                     # planted dead definitions
_SWITCH_REGS = ("t10", "t11")        # jump-table dispatch
_BUDGET_REG = "s5"                   # call budget (live across calls)
_CROSS_REG = "s4"                    # figure-1d cross-call value
_PTR_REG = "pv"                      # indirect call target
# t3 and t8 are deliberately never emitted: they are the scratch pool
# the reallocation pass (Figure 1d) can rename into.


@dataclass(frozen=True)
class GeneratorConfig:
    """Knobs for the synthetic generator."""

    seed: int = 0
    #: Budget passed to top-level calls; bounds the dynamic call tree.
    initial_budget: int = 7
    #: Fraction of calls emitted as resolvable ``li``+``jsr``.
    indirect_call_fraction: float = 0.08
    #: Fraction of calls through data-section pointer tables (opaque).
    opaque_call_fraction: float = 0.04
    #: Fraction of calls emitted as two-way virtual dispatch with a
    #: linker call-target hint (§3.5's suggested improvement).
    hinted_call_fraction: float = 0.05
    #: Fraction of routines with a guarded self-recursive call.
    recursion_fraction: float = 0.04
    #: Fraction of call sites wrapped in a figure-1c spill pattern.
    spill_fraction: float = 0.28
    #: Fraction of call sites followed by a planted dead definition.
    dead_code_fraction: float = 0.16
    #: Fraction of calling routines keeping a value in s4 across calls.
    cross_call_value_fraction: float = 0.45
    #: Fraction of routines exported beyond those in pointer tables.
    exported_fraction: float = 0.02


@dataclass
class _Plan:
    """Everything decided about one routine before emission."""

    name: str
    level: int
    exported: bool = False
    #: (callee name, kind, hint targets) with kind in
    #: {"bsr", "jsr", "opaque", "self", "hinted"}; the third element is
    #: non-empty only for hinted virtual dispatch.
    calls: List[Tuple[str, str, Tuple[str, ...]]] = field(default_factory=list)
    if_thens: int = 0
    diamonds: int = 0
    loops: int = 0
    early_exits: int = 0
    switch_ways: int = 0
    switch_in_loop: bool = False
    switch_case_calls: int = 0
    cross_value: bool = False
    spill_calls: int = 0
    dead_calls: int = 0
    filler: int = 2
    extra_segments: int = 0
    #: Probability that a (non-switch) call is followed by a direct
    #: branch to the routine's tail — the dispatch idiom
    #: ``if (cond) { call; return; }``.  Without it, sequential call
    #: chains make every return node reach every later call node,
    #: inflating PSG edges quadratically beyond what the paper's
    #: call-dense benchmarks (maxeda: 15 calls but only 46 PSG
    #: edges/routine) exhibit.
    early_return_prob: float = 0.0

    @property
    def has_calls(self) -> bool:
        return bool(self.calls) or self.switch_case_calls > 0


def generate_benchmark(
    name: str,
    scale: float = 1.0,
    config: Optional[GeneratorConfig] = None,
) -> Tuple[Program, BenchmarkShape]:
    """Generate the named benchmark at ``scale``; returns (program, shape)."""
    shape = shape_by_name(name)
    if scale != 1.0:
        shape = shape.scaled(scale)
    return generate_program(shape, config), shape


def generate_program(
    shape: BenchmarkShape, config: Optional[GeneratorConfig] = None
) -> Program:
    """Generate a decoded program matching ``shape``."""
    return disassemble_image(generate_image(shape, config))


def generate_image(
    shape: BenchmarkShape, config: Optional[GeneratorConfig] = None
) -> ExecutableImage:
    """Generate an executable image matching ``shape``."""
    config = config or GeneratorConfig()
    rng = random.Random(
        (config.seed << 20) ^ zlib.crc32(shape.name.encode("utf-8"))
    )
    plans, opaque_pool = _plan_program(shape, config, rng)

    assembler = Assembler()
    if opaque_pool:
        assembler.data_code_pointers("fnptrs", opaque_pool)
    _emit_main(assembler, plans, config, rng)
    for plan in plans:
        _Emitter(assembler, plan, shape, config, rng, opaque_pool).emit()
    return assembler.build(entry="main")


# ----------------------------------------------------------------------
# Planning
# ----------------------------------------------------------------------

def _plan_program(
    shape: BenchmarkShape, config: GeneratorConfig, rng: random.Random
) -> Tuple[List[_Plan], List[str]]:
    count = max(2, shape.routines - 1)  # main is emitted separately
    levels = max(2, min(10, int(math.log2(count)) + 1))
    plans: List[_Plan] = []
    by_level: Dict[int, List[str]] = {level: [] for level in range(1, levels + 1)}
    for index in range(count):
        name = f"f{index}"
        level = 1 + min(
            levels - 1, int(rng.random() * levels)
        )
        if index < 3:
            level = 1  # guarantee entry-level routines for main to call
        by_level[level].append(name)
        plans.append(_Plan(name=name, level=level))

    # Pick which routines are reachable through pointer tables.
    opaque_targets: List[str] = []

    switch_probability = min(0.9, shape.paper_edge_reduction_pct / 85.0)
    mean_calls = shape.calls_per_routine
    mean_branches = shape.branches_per_routine

    for plan in plans:
        deeper: List[str] = []
        for level in range(plan.level + 1, levels + 1):
            deeper.extend(by_level[level])
        is_leaf = not deeper or plan.level == levels
        if not is_leaf:
            n_calls = max(0, round(rng.gauss(mean_calls, mean_calls * 0.5)))
        else:
            n_calls = 0

        for _ in range(n_calls):
            target = rng.choice(deeper)
            roll = rng.random()
            hint: Tuple[str, ...] = ()
            if roll < config.opaque_call_fraction:
                kind = "opaque"
                if target not in opaque_targets:
                    opaque_targets.append(target)
            elif roll < config.opaque_call_fraction + config.hinted_call_fraction:
                kind = "hinted"
                other = rng.choice(deeper)
                hint = (target, other) if other != target else (target,)
            elif roll < (
                config.opaque_call_fraction
                + config.hinted_call_fraction
                + config.indirect_call_fraction
            ):
                kind = "jsr"
            else:
                kind = "bsr"
            plan.calls.append((target, kind, hint))
        if n_calls and rng.random() < config.recursion_fraction:
            plan.calls.append((plan.name, "self", ()))

        # Each call segment contributes one budget-guard conditional of
        # its own, so the planned branchy segments cover the remainder.
        n_branches = max(
            0,
            round(rng.gauss(mean_branches, mean_branches * 0.4)) - n_calls,
        )
        plan.loops = min(2, n_branches // 5)
        plan.early_exits = (
            1 if rng.random() < (shape.exits_per_routine - 1.0) else 0
        )
        remaining = max(0, n_branches - plan.loops - plan.early_exits)
        plan.diamonds = round(remaining * 0.3)
        plan.if_thens = remaining - plan.diamonds

        if rng.random() < switch_probability and n_branches >= 3:
            reduction = shape.paper_edge_reduction_pct
            plan.switch_ways = 8 if reduction >= 30 else rng.choice((4, 4, 8))
            plan.switch_in_loop = reduction >= 10
            if plan.calls and reduction >= 30:
                # The structure behind the paper's large reductions:
                # *every* call sits at a multiway target inside a loop,
                # so without branch nodes each return node reaches each
                # call node (O(n^2) edges, §3.6 / Figure 12).
                plan.switch_case_calls = len(plan.calls)
            elif plan.calls and reduction >= 10:
                plan.switch_case_calls = min(len(plan.calls), plan.switch_ways)

        plan.cross_value = (
            bool(plan.calls)
            and rng.random() < config.cross_call_value_fraction
        )
        plan.spill_calls = sum(
            1 for _ in plan.calls if rng.random() < config.spill_fraction
        )
        plan.dead_calls = sum(
            1 for _ in plan.calls if rng.random() < config.dead_code_fraction
        )
        plan.exported = rng.random() < config.exported_fraction
        plan.filler = max(1, round(shape.instructions_per_block) - 2)
        plan.early_return_prob = max(0.0, min(0.7, (mean_calls - 3.0) / 9.0))

        # Pad with straight-line segments toward the per-routine size.
        target_instr = shape.instructions / shape.routines
        estimate = _estimate_instructions(plan)
        if estimate < target_instr:
            plan.extra_segments = int(
                (target_instr - estimate) / max(2, plan.filler)
            )

    for plan in plans:
        if plan.name in opaque_targets:
            plan.exported = True
    return plans, opaque_targets


def _estimate_instructions(plan: _Plan) -> float:
    per_call = 6 + plan.filler
    per_branchy = 3 + plan.filler
    switch = (
        6 + plan.switch_ways * (2 + plan.filler) if plan.switch_ways else 0
    )
    prologue = 8 if plan.has_calls else 3
    return (
        prologue
        + len(plan.calls) * per_call
        + (plan.if_thens + plan.diamonds + plan.loops) * per_branchy
        + switch
        + plan.early_exits * 4
    )


# ----------------------------------------------------------------------
# Emission
# ----------------------------------------------------------------------

def _emit_main(
    assembler: Assembler,
    plans: Sequence[_Plan],
    config: GeneratorConfig,
    rng: random.Random,
) -> None:
    """main: call a few level-1 routines, OUTPUT their results, halt."""
    assembler.routine("main", exported=True)
    entry_level = [plan.name for plan in plans if plan.level == 1]
    targets = entry_level[: max(2, min(4, len(entry_level)))]
    for target in targets:
        assembler.li("a0", config.initial_budget)
        assembler.li("a1", rng.randrange(1, 100))
        assembler.bsr(target)
        assembler.op("bis", "zero", "v0", "a0")
        assembler.output()
    assembler.halt()


class _Emitter:
    """Emit one routine from its plan."""

    def __init__(
        self,
        assembler: Assembler,
        plan: _Plan,
        shape: BenchmarkShape,
        config: GeneratorConfig,
        rng: random.Random,
        opaque_pool: Sequence[str],
    ) -> None:
        self.asm = assembler
        self.plan = plan
        self.shape = shape
        self.config = config
        self.rng = rng
        self.opaque_pool = list(opaque_pool)
        self._labels = 0
        self._tables = 0
        self._call_queue: List[Tuple[str, str, Tuple[str, ...]]] = list(plan.calls)
        self._vtables = 0
        self._spills_left = plan.spill_calls
        self._deads_left = plan.dead_calls
        self._next_slot = 0
        self._early_exit_labels: List[str] = []
        self._tail_label: Optional[str] = None
        # Frame layout.
        self.saves: List[Tuple[str, int]] = []
        if plan.has_calls:
            self.saves.append(("ra", self._alloc_slot()))
            self.saves.append((_BUDGET_REG, self._alloc_slot()))
            if plan.cross_value:
                self.saves.append((_CROSS_REG, self._alloc_slot()))
            if plan.loops:
                self.saves.append((_LOOP_SAVED, self._alloc_slot()))
        self._spill_slots = [
            self._alloc_slot() for _ in range(min(4, plan.spill_calls) or 0)
        ]
        self._spill_cursor = 0
        slots = self._next_slot // 8
        self.frame = 16 * ((slots * 8 + 15) // 16) if slots else 0

    # -- small helpers ---------------------------------------------------

    def _alloc_slot(self) -> int:
        slot = self._next_slot
        self._next_slot += 8
        return slot

    def fresh(self, prefix: str) -> str:
        self._labels += 1
        return f"{prefix}_{self._labels}"

    def filler(self, count: Optional[int] = None) -> None:
        """Straight-line arithmetic on the scratch registers.

        The values chain forward (each op reads the previous result) and
        the chain ends in ``t0``, which every exit folds into ``v0`` —
        so filler computations are *live*, as real compiled code is;
        only the explicitly planted dead definitions are dead.
        """
        rng = self.rng
        total = count if count is not None else self.plan.filler
        source = "t0"
        for index in range(total):
            destination = _SCRATCH[(index + 1) % len(_SCRATCH)]
            if index == total - 1:
                destination = "t0"  # terminate the chain live
            kind = rng.randrange(5)
            if kind == 0:
                self.asm.op("addq", source, rng.randrange(1, 64), destination)
            elif kind == 1:
                self.asm.op("subq", source, rng.choice(_SCRATCH), destination)
            elif kind == 2:
                self.asm.op("xor", source, rng.choice(_SCRATCH), destination)
            elif kind == 3:
                self.asm.op("sll", source, rng.randrange(1, 8), destination)
            else:
                self.asm.op("and", source, rng.randrange(1, 255), destination)
            source = destination

    # -- emission --------------------------------------------------------

    def emit(self) -> None:
        plan = self.plan
        asm = self.asm
        asm.routine(plan.name, exported=plan.exported)
        self._prologue()

        segments: List[str] = []
        segments.extend(["call"] * len(self._call_queue))
        segments.extend(["if_then"] * plan.if_thens)
        segments.extend(["diamond"] * plan.diamonds)
        segments.extend(["loop"] * plan.loops)
        segments.extend(["straight"] * plan.extra_segments)
        self.rng.shuffle(segments)
        if plan.switch_ways:
            position = self.rng.randrange(len(segments) + 1)
            segments.insert(position, "switch")
        # Early exits interleave anywhere but the very start.
        for _ in range(plan.early_exits):
            position = self.rng.randrange(1, len(segments) + 1)
            segments.insert(position, "early_exit")

        for segment in segments:
            if segment == "call":
                self._segment_call()
            elif segment == "if_then":
                self._segment_if_then()
            elif segment == "diamond":
                self._segment_diamond()
            elif segment == "loop":
                self._segment_loop()
            elif segment == "switch":
                self._segment_switch()
            elif segment == "early_exit":
                self._segment_early_exit()
            else:
                self.filler()

        if self._tail_label is not None:
            asm.label(self._tail_label)
        self._final_value()
        self._epilogue()
        for label in self._early_exit_labels:
            asm.label(label)
            self._final_value()
            self._epilogue()

    def _prologue(self) -> None:
        asm = self.asm
        if self.frame:
            asm.memory("lda", "sp", -self.frame, "sp")
            for register, slot in self.saves:
                asm.memory("stq", register, slot, "sp")
        if self.plan.has_calls:
            # Keep the call budget in a callee-saved register.
            asm.op("bis", "zero", "a0", _BUDGET_REG)
        if self.plan.cross_value:
            asm.li(_CROSS_REG, self.rng.randrange(1, 50))
        # Seed the scratch value and the return value.
        asm.op("bis", "zero", "a1", "t0")
        asm.li("t1", self.rng.randrange(1, 30))
        asm.op("addq", "t0", "t1", "t2")
        asm.li("v0", self.rng.randrange(1, 20))

    def _final_value(self) -> None:
        asm = self.asm
        asm.op("addq", "v0", "t0", "v0")
        if self.plan.cross_value:
            asm.op("addq", "v0", _CROSS_REG, "v0")

    def _epilogue(self) -> None:
        asm = self.asm
        if self.frame:
            for register, slot in reversed(self.saves):
                asm.memory("ldq", register, slot, "sp")
            asm.memory("lda", "sp", self.frame, "sp")
        asm.ret()

    # -- segments ----------------------------------------------------------

    def _segment_call(self, from_switch: bool = False) -> None:
        if not self._call_queue:
            self.filler()
            return
        target, kind, hint = self._call_queue.pop()
        asm = self.asm
        rng = self.rng
        skip = self.fresh("skip")
        asm.op("subq", _BUDGET_REG, 1, _BUDGET_REG)
        asm.branch("ble", _BUDGET_REG, skip)

        spill_register = None
        spill_slot = None
        if self._spills_left > 0 and self._spill_slots:
            self._spills_left -= 1
            spill_register = rng.choice(_SPILL_REGS)
            spill_slot = self._spill_slots[
                self._spill_cursor % len(self._spill_slots)
            ]
            self._spill_cursor += 1
            asm.op("addq", "t0", rng.randrange(1, 32), spill_register)
            asm.memory("stq", spill_register, spill_slot, "sp")

        asm.op("bis", "zero", _BUDGET_REG, "a0")
        asm.li("a1", rng.randrange(1, 64))
        if kind == "bsr" or kind == "self":
            asm.bsr(target)
        elif kind == "jsr":
            asm.li(_PTR_REG, f"&{target}")
            asm.jsr(_PTR_REG)
        elif kind == "hinted" and len(hint) > 1:
            # Two-way virtual dispatch through a private pointer table,
            # covered by a §3.5 linker call-target hint.
            self._vtables += 1
            table = f"vt_{self.plan.name}_{self._vtables}"
            asm.data_code_pointers(table, list(hint))
            asm.op("and", _BUDGET_REG, len(hint) - 1, _SWITCH_REGS[0])
            asm.op("sll", _SWITCH_REGS[0], 3, _SWITCH_REGS[0])
            asm.li(_SWITCH_REGS[1], f"@{table}")
            asm.op("addq", _SWITCH_REGS[1], _SWITCH_REGS[0], _SWITCH_REGS[1])
            asm.memory("ldq", _PTR_REG, 0, _SWITCH_REGS[1])
            asm.jsr(_PTR_REG, hint_targets=list(hint))
        elif kind == "hinted":
            asm.li(_PTR_REG, f"&{target}")
            asm.jsr(_PTR_REG, hint_targets=[target])
        else:  # opaque: load the pointer from the data table
            index = self.opaque_pool.index(target)
            offset = 8 * index
            asm.li(_SWITCH_REGS[0], "@fnptrs")
            if offset <= 0x7FFF:
                asm.memory("ldq", _PTR_REG, offset, _SWITCH_REGS[0])
            else:
                # Large pointer tables exceed the 16-bit displacement.
                asm.li(_SWITCH_REGS[1], offset)
                asm.op("addq", _SWITCH_REGS[0], _SWITCH_REGS[1], _SWITCH_REGS[0])
                asm.memory("ldq", _PTR_REG, 0, _SWITCH_REGS[0])
            asm.jsr(_PTR_REG)

        if spill_register is not None:
            asm.memory("ldq", spill_register, spill_slot, "sp")
            asm.op("addq", spill_register, "v0", "t0")
        else:
            asm.op("addq", "t0", "v0", "t0")
        if self.plan.cross_value and rng.random() < 0.6:
            asm.op("addq", _CROSS_REG, "v0", _CROSS_REG)
        if self._deads_left > 0:
            self._deads_left -= 1
            asm.op("addq", "v0", rng.randrange(1, 100), _DEAD_REG)
        if (
            not from_switch
            and rng.random() < self.plan.early_return_prob
        ):
            # Dispatch idiom: once this call has run, leave the routine.
            if self._tail_label is None:
                self._tail_label = self.fresh("tail")
            asm.br(self._tail_label)
        asm.label(skip)

    def _segment_if_then(self) -> None:
        asm = self.asm
        join = self.fresh("join")
        asm.op("and", "t0", 1 << self.rng.randrange(3), "t1")
        asm.branch("beq", "t1", join)
        self.filler()
        asm.label(join)

    def _segment_diamond(self) -> None:
        asm = self.asm
        other = self.fresh("else")
        join = self.fresh("join")
        asm.op("and", "t0", 1 << self.rng.randrange(3), "t1")
        asm.branch("bne", "t1", other)
        self.filler()
        asm.br(join)
        asm.label(other)
        self.filler()
        asm.label(join)

    def _segment_loop(self) -> None:
        asm = self.asm
        rng = self.rng
        head = self.fresh("loop")
        trips = rng.randrange(2, 5)
        call_in_loop = bool(self._call_queue) and rng.random() < 0.5
        counter = _LOOP_SAVED if (call_in_loop and self.plan.has_calls) else _LOOP_TEMP
        if counter == _LOOP_SAVED and not any(
            register == _LOOP_SAVED for register, _slot in self.saves
        ):
            counter = _LOOP_TEMP
            call_in_loop = False
        asm.li(counter, trips)
        asm.label(head)
        self.filler()
        if call_in_loop:
            self._segment_call()
        asm.op("subq", counter, 1, counter)
        asm.branch("bgt", counter, head)

    def _segment_switch(self) -> None:
        asm = self.asm
        plan = self.plan
        rng = self.rng
        ways = plan.switch_ways
        self._tables += 1
        table = f"{plan.name}_tbl{self._tables}"
        head = self.fresh("swloop")
        join = self.fresh("swjoin")
        cases = [self.fresh("case") for _ in range(ways)]

        loop_counter = None
        if plan.switch_in_loop:
            loop_counter = (
                _LOOP_SAVED
                if plan.switch_case_calls
                and any(r == _LOOP_SAVED for r, _s in self.saves)
                else _LOOP_TEMP
            )
            if plan.switch_case_calls and loop_counter == _LOOP_TEMP:
                plan.switch_case_calls = 0  # cannot keep counter alive
            asm.li(loop_counter, rng.randrange(2, 4))
            asm.label(head)

        index_source = _BUDGET_REG if plan.has_calls else "t0"
        asm.op("and", index_source, ways - 1, _SWITCH_REGS[0])
        asm.li(_SWITCH_REGS[1], f"&{table}")
        asm.op("sll", _SWITCH_REGS[0], 3, _SWITCH_REGS[0])
        asm.op("addq", _SWITCH_REGS[1], _SWITCH_REGS[0], _SWITCH_REGS[1])
        asm.memory("ldq", _SWITCH_REGS[1], 0, _SWITCH_REGS[1])
        asm.jmp(_SWITCH_REGS[1], table=table)

        calls_remaining = plan.switch_case_calls
        for index, case in enumerate(cases):
            asm.label(case)
            self.filler(max(1, plan.filler - 1))
            # Spread the remaining case calls over the remaining cases
            # (several calls per case when calls outnumber the ways).
            share = -(-calls_remaining // (ways - index))  # ceil division
            for _ in range(share):
                if calls_remaining > 0 and self._call_queue:
                    calls_remaining -= 1
                    self._segment_call(from_switch=True)
            asm.br(join)
        asm.jump_table(table, cases)
        asm.label(join)
        if plan.switch_in_loop:
            assert loop_counter is not None
            asm.op("subq", loop_counter, 1, loop_counter)
            asm.branch("bgt", loop_counter, head)

    def _segment_early_exit(self) -> None:
        label = self.fresh("early")
        self._early_exit_labels.append(label)
        self.asm.op("cmpeq", "t0", "t1", "t2")
        self.asm.branch("bne", "t2", label)
