"""Benchmark shape records, transcribed from the paper's §4 tables.

Each :class:`BenchmarkShape` holds two kinds of data:

* **generator inputs** — the structural statistics of the benchmark
  (routines, blocks, instructions, per-routine call/branch/exit
  densities, multiway-branch pressure), which the synthetic generator
  reproduces;
* **paper-reported results** (``paper_*`` fields) — the measurements
  Tables 2-5 report for that benchmark on the 466 MHz Alpha 21164, so
  the benchmark harness can print paper-vs-measured side by side.

``paper_edge_reduction_pct`` (Table 4) doubles as a generator input: it
controls how much multiway-branch-with-calls-in-loop structure the
synthetic program contains, since that structure is exactly what branch
nodes exist to collapse (§3.6).
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Dict, Tuple


@dataclass(frozen=True)
class BenchmarkShape:
    """Shape statistics and paper-reported results for one benchmark."""

    name: str
    suite: str
    description: str
    # --- generator inputs (Table 2 & 3 structure) ----------------------
    routines: int
    basic_blocks: int
    instructions: int
    exits_per_routine: float
    calls_per_routine: float
    branches_per_routine: float
    # --- paper-reported results (Tables 2-5) ---------------------------
    paper_time_seconds: float
    paper_memory_mbytes: float
    paper_psg_nodes_per_routine: float
    paper_psg_edges_per_routine: float
    paper_edge_reduction_pct: float
    paper_node_increase_pct: float
    paper_psg_nodes_k: float
    paper_psg_edges_k: float
    paper_cfg_arcs_k: float
    paper_nodes_per_block: float
    paper_edges_per_arc: float

    @property
    def blocks_per_routine(self) -> float:
        return self.basic_blocks / self.routines

    @property
    def instructions_per_block(self) -> float:
        return self.instructions / self.basic_blocks

    def scaled(self, fraction: float) -> "BenchmarkShape":
        """A proportionally smaller shape (at least 4 routines).

        Scales the routine count while keeping every per-routine
        statistic, so per-routine tables are unaffected and whole-program
        tables scale linearly — exactly the regime Figures 14/15 probe.
        """
        if fraction <= 0:
            raise ValueError("fraction must be positive")
        routines = max(4, round(self.routines * fraction))
        actual = routines / self.routines
        return replace(
            self,
            routines=routines,
            basic_blocks=max(routines, round(self.basic_blocks * actual)),
            instructions=max(routines * 2, round(self.instructions * actual)),
        )


def _spec(name, description, routines, blocks, instr_k, exits, calls,
          branches, time_s, mem_mb, psg_n, psg_e, red, inc,
          nodes_k, edges_k, arcs_k, npb, epa) -> BenchmarkShape:
    return BenchmarkShape(
        name=name,
        suite="SPECint95",
        description=description,
        routines=routines,
        basic_blocks=blocks,
        instructions=round(instr_k * 1000),
        exits_per_routine=exits,
        calls_per_routine=calls,
        branches_per_routine=branches,
        paper_time_seconds=time_s,
        paper_memory_mbytes=mem_mb,
        paper_psg_nodes_per_routine=psg_n,
        paper_psg_edges_per_routine=psg_e,
        paper_edge_reduction_pct=red,
        paper_node_increase_pct=inc,
        paper_psg_nodes_k=nodes_k,
        paper_psg_edges_k=edges_k,
        paper_cfg_arcs_k=arcs_k,
        paper_nodes_per_block=npb,
        paper_edges_per_arc=epa,
    )


def _pc(name, description, routines, blocks, instr_k, exits, calls,
        branches, time_s, mem_mb, psg_n, psg_e, red, inc,
        nodes_k, edges_k, arcs_k, npb, epa) -> BenchmarkShape:
    shape = _spec(name, description, routines, blocks, instr_k, exits,
                  calls, branches, time_s, mem_mb, psg_n, psg_e, red, inc,
                  nodes_k, edges_k, arcs_k, npb, epa)
    return replace(shape, suite="PC Applications")


#: The SPEC95 integer benchmarks (Tables 2-5 of the paper).
SPEC95_SHAPES: Tuple[BenchmarkShape, ...] = (
    _spec("compress", "file compression", 122, 2546, 13.5, 1.81, 3.30,
          13.75, 0.05, 0.20, 9.47, 17.19, 35.4, 0.4, 1.16, 2.10, 4.20, 0.45, 0.50),
    _spec("gcc", "C compiler", 1878, 69588, 297.6, 1.62, 9.86,
          23.16, 1.90, 6.38, 22.45, 43.65, 48.5, 0.5, 42.16, 81.97, 125.91, 0.61, 0.65),
    _spec("go", "game player", 462, 12548, 71.4, 1.71, 4.92,
          17.99, 0.28, 0.88, 12.58, 22.03, 12.2, 0.2, 5.81, 10.18, 21.95, 0.46, 0.46),
    _spec("ijpeg", "image compression", 393, 6814, 42.8, 1.49, 3.92,
          10.55, 0.16, 0.56, 10.38, 16.16, 17.1, 0.2, 4.08, 6.35, 11.39, 0.60, 0.56),
    _spec("li", "lisp interpreter", 491, 6052, 29.4, 1.37, 3.49,
          7.18, 0.14, 0.56, 9.41, 10.72, 1.3, 0.4, 4.62, 5.27, 10.74, 0.76, 0.49),
    _spec("m88ksim", "CPU simulator", 383, 8205, 40.6, 1.75, 4.66,
          13.47, 0.16, 0.58, 12.14, 16.39, 1.2, 0.5, 4.65, 6.28, 14.02, 0.57, 0.45),
    _spec("perl", "perl interpreter", 487, 19468, 92.7, 1.47, 9.34,
          25.55, 0.42, 1.57, 21.27, 40.73, 73.6, 0.5, 10.36, 19.84, 33.72, 0.53, 0.59),
    _spec("vortex", "object database", 818, 21880, 110.0, 1.20, 8.97,
          15.00, 0.59, 2.85, 20.19, 50.11, 4.7, 0.2, 16.51, 40.99, 39.95, 0.75, 1.03),
)

#: The eight large PC applications (Table 1 + Tables 2-5).
PC_APP_SHAPES: Tuple[BenchmarkShape, ...] = (
    _pc("acad", "Autodesk AutoCad (mechanical CAD)", 31766, 339962, 1734.7,
        1.14, 5.02, 4.58, 12.04, 41.11, 12.18, 14.36, 1.8, 0.2,
        386.80, 456.07, 612.11, 1.14, 0.75),
    _pc("excel", "Microsoft Excel 5.0 (spreadsheet)", 12657, 301823, 1506.3,
        1.00, 8.42, 12.98, 8.95, 28.04, 18.88, 26.66, 4.1, 0.4,
        238.91, 337.48, 544.41, 0.80, 0.62),
    _pc("maxeda", "OrCad MaxEDA 6.0 (electronic CAD)", 2126, 84053, 418.6,
        1.12, 15.45, 20.25, 2.02, 8.14, 32.96, 46.33, 0.9, 0.3,
        70.08, 98.50, 151.55, 0.83, 0.65),
    _pc("sqlservr", "Microsoft Sqlservr 6.5 (database)", 3275, 123607, 754.9,
        1.30, 10.48, 22.60, 3.34, 10.17, 23.31, 38.94, 80.0, 0.2,
        76.33, 127.54, 211.74, 0.62, 0.60),
    _pc("texim", "Welcom Software Texim 2.0 (project manager)", 1821, 50955,
        302.0, 1.29, 11.24, 13.90, 1.34, 5.36, 24.91, 34.47, 3.6, 0.6,
        45.36, 62.77, 90.79, 0.89, 0.69),
    _pc("ustation", "Bentley Systems Microstation (mechanical CAD)", 12101,
        165929, 916.4, 1.35, 5.03, 6.86, 5.21, 16.61, 12.42, 15.76, 2.1, 0.2,
        150.27, 190.76, 294.47, 0.91, 0.65),
    _pc("vc", "Microsoft Visual C (compiler backend)", 2154, 82072, 493.7,
        1.10, 9.11, 24.47, 2.18, 6.18, 20.51, 36.58, 55.4, 0.8,
        44.17, 78.80, 146.34, 0.54, 0.54),
    _pc("winword", "Microsoft Word 6.0 (word processing)", 12252, 288799,
        1520.8, 1.01, 8.10, 13.02, 8.30, 25.42, 18.25, 24.64, 0.3, 0.3,
        223.56, 301.84, 508.20, 0.77, 0.59),
)

#: Every benchmark, SPEC first (the row order of Table 2).
ALL_SHAPES: Tuple[BenchmarkShape, ...] = SPEC95_SHAPES + PC_APP_SHAPES

_BY_NAME: Dict[str, BenchmarkShape] = {shape.name: shape for shape in ALL_SHAPES}


def shape_by_name(name: str) -> BenchmarkShape:
    """Look a benchmark shape up by its Table-2 name."""
    try:
        return _BY_NAME[name]
    except KeyError:
        raise KeyError(
            f"unknown benchmark {name!r}; known: {sorted(_BY_NAME)}"
        ) from None
