"""A traffic-shaped load driver for the analysis daemon.

``benchmarks/bench_service.py`` measures one carefully sequenced
cold/warm/edit round trip; a service claim needs more than that — it
needs p50/p95/p99 under *traffic*: skewed image popularity, bursts,
tenants that have never been seen before, optimizer edit streams.  This
module is the ROADMAP's "load driver + trace-replay benchmark harness"
item:

* :class:`Req` — one request to issue (endpoint kind, image, tenant,
  optional routine, open-loop arrival offset).
* :class:`ReqGenEngine` — a seeded, deterministic request-stream
  generator.  Engines:

  - :class:`UniformEngine` — uniform image and routine choice with a
    configurable analyze/query mix;
  - :class:`ZipfEngine` — Zipf-skewed choice (rank ``r`` drawn with
    probability ``∝ 1/r^s``), the standard popularity model: a few hot
    images absorb most traffic, the tail stays cold;
  - :class:`EditReplayEngine` — replays a recorded edit trace (see
    :func:`record_edit_trace`) over one image, modelling an optimizer
    that keeps re-analyzing as it rewrites routines.

  Every engine mints fresh tenants for a configurable *cold fraction*
  of requests — a never-seen tenant namespaces a new session, so cold
  and warm paths mix the way real multi-tenant traffic does.
* :class:`Workload` — pairs an engine with an arrival process
  (open-loop: exponential inter-arrival gaps at a target rate, with
  seeded bursts that issue back-to-back) and drives a live daemon
  concurrently through :class:`~repro.service.client.ServiceClient`,
  collecting per-request latencies into a :class:`WorkloadReport`
  (client-side p50/p95/p99 are exact order statistics, not bucket
  estimates — the cross-check for the server's histograms).

Everything is seeded; the same ``(engine, seed, count)`` triple issues
byte-identical request streams, which is what lets CI assert "server
histogram count == requests sent" without slack.
"""

from __future__ import annotations

import random
import time
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.service.client import ServiceClient, ServiceError
from repro.workloads.generator import GeneratorConfig, generate_benchmark
from repro.program.rewrite import program_to_image
from repro.workloads.mutate import editable_routines

#: Request kinds an engine can emit.
KIND_ANALYZE = "analyze"
KIND_QUERY = "query"
KIND_EDIT = "edit"


@dataclass(frozen=True)
class ImageSpec:
    """One image the driver can aim requests at."""

    name: str
    image_bytes: bytes
    #: Queryable routine names (``/v1/query`` targets).
    routines: Tuple[str, ...]
    #: Routines ``perturb_routine`` can edit (edit-replay targets).
    editable: Tuple[str, ...] = ()

    @classmethod
    def from_benchmark(
        cls, name: str, scale: float = 1.0, seed: int = 0
    ) -> "ImageSpec":
        """Generate a Table-2/3 image (optionally scaled) as a target."""
        program, _ = generate_benchmark(
            name, scale=scale, config=GeneratorConfig(seed=seed)
        )
        return cls(
            name=name,
            image_bytes=program_to_image(program).to_bytes(),
            routines=tuple(r.name for r in program.routines),
            editable=tuple(editable_routines(program)),
        )


@dataclass(frozen=True)
class Req:
    """One request to issue against the daemon."""

    kind: str
    image: str
    tenant: str = "public"
    #: Query target (``kind == "query"``) or edit target
    #: (``kind == "edit"``; ``None`` edits the default routine).
    routine: Optional[str] = None
    #: Open-loop arrival offset in seconds from workload start.
    at: float = 0.0


@dataclass
class ReqResult:
    """What one issued request came back as."""

    kind: str
    image: str
    status: int
    warm: bool
    seconds: float
    run_id: Optional[str] = None


class ReqGenEngine:
    """Base class for seeded request-stream generators.

    Subclasses implement :meth:`_generate_one`; the base class owns the
    tenant mix — a ``cold_fraction`` of requests get a fresh
    never-seen tenant (forcing a new session: the registry namespaces
    by tenant), the rest share one warm tenant.
    """

    name = "base"

    def __init__(
        self,
        images: Sequence[ImageSpec],
        seed: int = 0,
        cold_fraction: float = 0.0,
        tenant: str = "load",
    ) -> None:
        if not images:
            raise ValueError("at least one ImageSpec is required")
        self.images = list(images)
        self.seed = seed
        self.cold_fraction = cold_fraction
        self.tenant = tenant

    def requests(self, count: int) -> List[Req]:
        """The first ``count`` requests of this engine's stream."""
        rng = random.Random(self.seed)
        out: List[Req] = []
        for index in range(count):
            req = self._generate_one(rng, index)
            if self.cold_fraction and rng.random() < self.cold_fraction:
                req = Req(
                    kind=req.kind,
                    image=req.image,
                    tenant=f"{self.tenant}-cold-{index}",
                    routine=req.routine,
                )
            out.append(req)
        return out

    def _generate_one(self, rng: random.Random, index: int) -> Req:
        raise NotImplementedError


class UniformEngine(ReqGenEngine):
    """Uniform image choice; ``query_fraction`` of requests are
    single-routine demand queries, the rest whole-image analyzes."""

    name = "uniform"

    def __init__(
        self,
        images: Sequence[ImageSpec],
        seed: int = 0,
        cold_fraction: float = 0.0,
        query_fraction: float = 0.5,
        tenant: str = "load",
    ) -> None:
        super().__init__(images, seed, cold_fraction, tenant)
        self.query_fraction = query_fraction

    def _generate_one(self, rng: random.Random, index: int) -> Req:
        spec = rng.choice(self.images)
        if spec.routines and rng.random() < self.query_fraction:
            return Req(
                kind=KIND_QUERY,
                image=spec.name,
                tenant=self.tenant,
                routine=rng.choice(spec.routines),
            )
        return Req(kind=KIND_ANALYZE, image=spec.name, tenant=self.tenant)


def zipf_weights(count: int, skew: float) -> List[float]:
    """Normalized Zipf weights: rank ``r`` (1-based) gets ``1/r^skew``."""
    raw = [1.0 / (rank ** skew) for rank in range(1, count + 1)]
    total = sum(raw)
    return [value / total for value in raw]


class ZipfEngine(UniformEngine):
    """Zipf-skewed image *and* routine popularity.

    ``skew`` ≈ 1 is the classic web-traffic curve; higher concentrates
    harder.  Image rank follows the order of ``images``; routine rank
    follows each image's routine order, so the same seed hits the same
    hot set run over run.
    """

    name = "zipf"

    def __init__(
        self,
        images: Sequence[ImageSpec],
        seed: int = 0,
        cold_fraction: float = 0.0,
        query_fraction: float = 0.5,
        skew: float = 1.1,
        tenant: str = "load",
    ) -> None:
        super().__init__(
            images, seed, cold_fraction, query_fraction, tenant
        )
        self.skew = skew
        self._image_weights = zipf_weights(len(self.images), skew)

    def _generate_one(self, rng: random.Random, index: int) -> Req:
        spec = rng.choices(self.images, weights=self._image_weights)[0]
        if spec.routines and rng.random() < self.query_fraction:
            routine = rng.choices(
                spec.routines,
                weights=zipf_weights(len(spec.routines), self.skew),
            )[0]
            return Req(
                kind=KIND_QUERY,
                image=spec.name,
                tenant=self.tenant,
                routine=routine,
            )
        return Req(kind=KIND_ANALYZE, image=spec.name, tenant=self.tenant)


def record_edit_trace(
    spec: ImageSpec, length: int, seed: int = 0
) -> List[str]:
    """A seeded "optimizer session": the sequence of routines an
    imagined optimizer edits, drawn (with repeats) from the image's
    editable routines.  Deterministic, so a trace can be recorded once
    and replayed anywhere."""
    if not spec.editable:
        raise ValueError(f"image {spec.name!r} has no editable routines")
    rng = random.Random(seed)
    return [rng.choice(spec.editable) for _ in range(length)]


class EditReplayEngine(ReqGenEngine):
    """Replay a recorded edit trace over one image.

    The first request is a plain analyze (the base the SUM2 cache seeds
    from); each subsequent request re-analyzes with the traced routine
    perturbed — the daemon's incremental warm-start path under a
    realistic edit stream.
    """

    name = "edit-replay"

    def __init__(
        self,
        spec: ImageSpec,
        trace: Sequence[str],
        seed: int = 0,
        tenant: str = "load",
    ) -> None:
        super().__init__([spec], seed, cold_fraction=0.0, tenant=tenant)
        self.trace = list(trace)

    def requests(self, count: int) -> List[Req]:
        spec = self.images[0]
        out = [Req(kind=KIND_ANALYZE, image=spec.name, tenant=self.tenant)]
        for index in range(count - 1):
            out.append(
                Req(
                    kind=KIND_EDIT,
                    image=spec.name,
                    tenant=self.tenant,
                    routine=self.trace[index % len(self.trace)],
                )
            )
        return out[:count]

    def _generate_one(self, rng: random.Random, index: int) -> Req:
        raise NotImplementedError  # requests() is fully overridden


def assign_arrivals(
    reqs: Sequence[Req],
    rate: float,
    seed: int = 0,
    burst_probability: float = 0.2,
) -> List[Req]:
    """Stamp open-loop arrival offsets onto a request stream.

    Inter-arrival gaps are exponential at ``rate`` requests/second
    (a Poisson process), except that with ``burst_probability`` a
    request arrives back-to-back with its predecessor — the bursty
    open-loop shape that exposes queueing, which a closed loop
    (issue → wait → issue) structurally cannot.
    """
    if rate <= 0:
        raise ValueError("rate must be positive")
    rng = random.Random(seed)
    clock = 0.0
    out: List[Req] = []
    for req in reqs:
        out.append(
            Req(
                kind=req.kind,
                image=req.image,
                tenant=req.tenant,
                routine=req.routine,
                at=clock,
            )
        )
        if rng.random() >= burst_probability:
            clock += rng.expovariate(rate)
    return out


@dataclass
class WorkloadReport:
    """Client-side view of one workload run."""

    engine: str
    results: List[ReqResult]
    wall_seconds: float

    @property
    def count(self) -> int:
        return len(self.results)

    @property
    def errors(self) -> int:
        return sum(1 for r in self.results if r.status >= 400)

    @property
    def warm_count(self) -> int:
        return sum(1 for r in self.results if r.warm)

    @property
    def throughput(self) -> float:
        return self.count / self.wall_seconds if self.wall_seconds else 0.0

    def quantile(self, q: float) -> float:
        """Exact order-statistic latency quantile (seconds)."""
        latencies = sorted(r.seconds for r in self.results)
        if not latencies:
            return 0.0
        index = min(len(latencies) - 1, int(q * len(latencies)))
        return latencies[index]

    def to_json(self) -> Dict[str, object]:
        return {
            "engine": self.engine,
            "requests": self.count,
            "errors": self.errors,
            "warm": self.warm_count,
            "wall_seconds": round(self.wall_seconds, 6),
            "throughput_rps": round(self.throughput, 3),
            "p50_ms": round(self.quantile(0.50) * 1e3, 3),
            "p95_ms": round(self.quantile(0.95) * 1e3, 3),
            "p99_ms": round(self.quantile(0.99) * 1e3, 3),
        }


class Workload:
    """Drive a daemon with an engine's stream, concurrently.

    ``connect`` is anything that builds a :class:`ServiceClient` for a
    tenant — the driver never cares whether the daemon is TCP or a
    unix socket.  With ``rate`` set the stream is open-loop (arrival
    times honored even while earlier requests are still in flight, up
    to ``concurrency`` transport threads); without it, requests issue
    as fast as the thread pool can carry them.
    """

    def __init__(
        self,
        engine: ReqGenEngine,
        count: int,
        concurrency: int = 4,
        rate: Optional[float] = None,
        burst_probability: float = 0.2,
        seed: int = 0,
    ) -> None:
        self.engine = engine
        self.count = count
        self.concurrency = concurrency
        self.rate = rate
        self.burst_probability = burst_probability
        self.seed = seed

    def plan(self) -> List[Req]:
        reqs = self.engine.requests(self.count)
        if self.rate is not None:
            reqs = assign_arrivals(
                reqs, self.rate, self.seed, self.burst_probability
            )
        return reqs

    def run(
        self,
        connect: Callable[[Optional[str]], ServiceClient],
    ) -> WorkloadReport:
        reqs = self.plan()
        images = {spec.name: spec for spec in self.engine.images}
        start = time.perf_counter()

        def issue(req: Req) -> ReqResult:
            client = connect(req.tenant)
            spec = images[req.image]
            issued = time.perf_counter()
            try:
                if req.kind == KIND_QUERY:
                    response = client.query(
                        spec.image_bytes, req.routine, # type: ignore[arg-type]
                    )
                elif req.kind == KIND_EDIT:
                    edit: Dict[str, object] = {}
                    if req.routine is not None:
                        edit["routine"] = req.routine
                    response = client.analyze(spec.image_bytes, edit=edit)
                else:
                    response = client.analyze(spec.image_bytes)
                status = response.status
                warm = response.warm
                run_id = response.run_id
            except ServiceError as error:
                status, warm, run_id = error.status, False, None
            return ReqResult(
                kind=req.kind,
                image=req.image,
                status=status,
                warm=warm,
                seconds=time.perf_counter() - issued,
                run_id=run_id,
            )

        with ThreadPoolExecutor(max_workers=self.concurrency) as pool:
            futures = []
            for req in reqs:
                delay = start + req.at - time.perf_counter()
                if delay > 0:
                    time.sleep(delay)
                futures.append(pool.submit(issue, req))
            results = [future.result() for future in futures]
        return WorkloadReport(
            engine=self.engine.name,
            results=results,
            wall_seconds=time.perf_counter() - start,
        )
