"""Benchmark workloads.

The paper evaluates on the SPECint95 suite and eight large commercial
PC applications.  Those binaries are unavailable (and unredistributable),
so this package provides the documented substitution:

* :mod:`repro.workloads.shapes` — per-benchmark *shape records*
  carrying the statistics the paper itself publishes (Tables 2-5:
  routines, blocks, instructions, calls/branches/exits per routine,
  and the paper's measured results for comparison);
* :mod:`repro.workloads.generator` — a deterministic synthetic program
  generator that produces executable images matching a shape: same
  routine count, call density, branchiness, multiway-branch usage,
  calling-convention discipline (frames, save/restore), plus the
  spill and callee-saved patterns the Figure-1 optimizations target.

Because every structural result in §4 is a function of these shape
statistics, generating to the published shape reproduces the
experiments' inputs as faithfully as possible without the original
binaries (see DESIGN.md).
"""

from repro.workloads.shapes import (
    ALL_SHAPES,
    PC_APP_SHAPES,
    SPEC95_SHAPES,
    BenchmarkShape,
    shape_by_name,
)
from repro.workloads.generator import (
    GeneratorConfig,
    generate_benchmark,
    generate_image,
    generate_program,
)

__all__ = [
    "ALL_SHAPES",
    "BenchmarkShape",
    "GeneratorConfig",
    "PC_APP_SHAPES",
    "SPEC95_SHAPES",
    "generate_benchmark",
    "generate_image",
    "generate_program",
    "shape_by_name",
]

# repro.workloads.driver (the daemon load driver) is imported on
# demand: it pulls in the service client, which the generator-only
# consumers (benchmarks, tests of shapes) never need.
