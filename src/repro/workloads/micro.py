"""Micro-workloads: the paper's figures as runnable programs.

Each function returns a small, executable
:class:`~repro.program.model.Program` reconstructing one of the paper's
worked examples.  They are used by the test suite as ground-truth
fixtures (the paper publishes the expected analysis results for them)
and are handy as minimal reproducers when exploring the analysis.

The paper's abstract registers R0..R3 map to ``t0``..``t3`` throughout.
"""

from __future__ import annotations

from repro.program.asm import assemble
from repro.program.disasm import disassemble_image
from repro.program.model import Program

#: Figure 2 / 9 / 11 — three routines P1, P2, P3 where P1 and P3 call
#: P2.  The paper publishes the converged phase-1 entry sets of all
#: three and P2's live-at-entry/exit (see tests/test_phases.py).
FIGURE2_SOURCE = """
.routine P1 export
    lda  sp, -16(sp)
    stq  ra, 0(sp)
    lda  t0, 1(zero)      ; def R0
    lda  t1, 2(zero)      ; def R1
    bsr  ra, P2           ; call P2
    beq  t0, P1_join      ; use R0 after the return
P1_join:
    ldq  ra, 0(sp)
    lda  sp, 16(sp)
    ret  (ra)
.routine P2
    beq  t1, P2_skip      ; use R1
    lda  t3, 7(zero)      ; def R3 on one path
P2_skip:
    lda  t2, 9(zero)      ; def R2 on every path
    ret  (ra)
.routine P3 export
    lda  sp, -16(sp)
    stq  ra, 0(sp)
    lda  t1, 5(zero)      ; def R1
    bsr  ra, P2           ; call P2
    ldq  ra, 0(sp)
    lda  sp, 16(sp)
    ret  (ra)
"""

#: Figure 4(a) — a four-block routine with one call, with block
#: contents chosen so the flow-summary edge E_A gets exactly the label
#: the paper's Figure 7 publishes (see tests/test_equations.py).
FIGURE4_SOURCE = """
.routine main export
    li   a0, 1
    bsr  ra, f
    halt
.routine f
    addq t1, #1, t2       ; block 1: UBD {R1}, DEF {R2}
    beq  t2, b3
    addq t2, #2, t3       ; block 2: DEF {R3}
    br   b4
b3:
    bsr  ra, g            ; block 3: ends with the call
b4:
    addq t2, #3, t3       ; block 4: DEF {R3}
    ret  (ra)
.routine g
    lda  v0, 1(zero)
    ret  (ra)
"""

#: Figure 12 — a multiway branch inside a loop with a call at every
#: target: the structure whose PSG edge count branch nodes collapse
#: from O(n²) to O(n) (see tests/test_psg.py).
FIGURE12_SOURCE = """
.routine main
    li a0, 3
    bsr ra, f
    halt
.routine f
    lda sp, -16(sp)
    stq ra, 0(sp)
loop:
    and  t0, #3, t1
    li   t2, &T
    sll  t1, #3, t1
    addq t2, t1, t2
    ldq  t2, 0(t2)
    jmp  t2, [T]
c0: bsr ra, g
    br next
c1: bsr ra, g
    br next
c2: bsr ra, g
    br next
c3: bsr ra, g
    br next
.jumptable T: c0, c1, c2, c3
next:
    subq t0, #1, t0
    bgt  t0, loop
    ldq  ra, 0(sp)
    lda  sp, 16(sp)
    ret  (ra)
.routine g
    lda v0, 1(zero)
    ret (ra)
"""

#: Figure 1 — all four optimization opportunities in one program (a
#: dead return value, a dead argument, a removable spill, and a
#: callee-saved register a caller-saved one could replace).
FIGURE1_SOURCE = """
.routine main export
    lda  sp, -32(sp)
    stq  ra, 0(sp)
    li   a1, 99           ; Figure 1(b): dead, helper reads only a0
    li   a0, 7
    li   t5, 1000
    stq  t5, 16(sp)       ; Figure 1(c): spill around a harmless call
    bsr  ra, helper
    ldq  t5, 16(sp)
    addq t5, v0, a0
    output
    bsr  ra, keeper
    ldq  ra, 0(sp)
    lda  sp, 32(sp)
    halt
.routine helper
    addq a0, #1, t0
    addq t0, t0, v0
    cmplt a0, v0, t9      ; Figure 1(a): dead definition
    ret  (ra)
.routine keeper
    lda  sp, -16(sp)
    stq  ra, 0(sp)
    stq  s0, 8(sp)        ; Figure 1(d): save/restore the realloc removes
    bis  zero, a0, s0
    li   a0, 3
    bsr  ra, helper
    addq s0, v0, v0
    ldq  s0, 8(sp)
    ldq  ra, 0(sp)
    lda  sp, 16(sp)
    ret  (ra)
"""


def figure2_program() -> Program:
    """The Figure 2/9/11 worked example (entry: P1)."""
    return disassemble_image(assemble(FIGURE2_SOURCE, entry="P1"))


def figure4_program() -> Program:
    """The Figure 4(a) CFG with Figure 7's edge labels."""
    return disassemble_image(assemble(FIGURE4_SOURCE))


def figure12_program() -> Program:
    """The Figure 12 branch-node scenario."""
    return disassemble_image(assemble(FIGURE12_SOURCE))


def figure1_program() -> Program:
    """All four Figure 1 optimization opportunities, executable."""
    return disassemble_image(assemble(FIGURE1_SOURCE))
