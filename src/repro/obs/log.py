"""Structured logging for the ``repro.*`` logger tree.

All pipeline modules log through stdlib ``logging`` under names rooted
at ``repro`` (``repro.interproc.parallel``, ``repro.interproc.persist``,
...).  Nothing is emitted unless configured: either the CLI's
``--log-level`` flag or the ``REPRO_LOG`` environment variable (read on
first ``repro.obs`` import, so library users get logging without code
changes).

Each record is stamped with the active run id (see
:mod:`repro.obs.runid`) so interleaved output from repeated or parallel
runs can be separated::

    2026-08-06 09:31:02,114 INFO    repro.api [1f2e3d4c5b6a] serial analysis starting: 42 routines
"""

from __future__ import annotations

import logging
import os
import sys
from typing import IO, Optional, Union

from repro.obs import runid

#: Environment variable consulted when no explicit level is given.
ENV_VAR = "REPRO_LOG"

_HANDLER_MARK = "_repro_obs_handler"

_FORMAT = "%(asctime)s %(levelname)-7s %(name)s [%(run_id)s] %(message)s"


class _RunIdFilter(logging.Filter):
    def filter(self, record: logging.LogRecord) -> bool:
        record.run_id = runid.current_run_id() or "-"
        return True


def resolve_level(level: Union[str, int, None]) -> int:
    """Map a level spec (name, number, or None -> $REPRO_LOG) to an int.

    Raises ``ValueError`` on unknown names so callers (the CLI) can turn
    it into a usage error.
    """
    if level is None:
        level = os.environ.get(ENV_VAR) or "WARNING"
    if isinstance(level, int):
        return level
    text = str(level).strip().upper()
    if text.isdigit():
        return int(text)
    numeric = logging.getLevelName(text)
    if not isinstance(numeric, int):
        raise ValueError(f"unknown log level {level!r}")
    return numeric


def configure_logging(
    level: Union[str, int, None] = None,
    stream: Optional[IO[str]] = None,
) -> logging.Logger:
    """Attach (once) a stderr handler to the ``repro`` logger and set
    its level.  Idempotent: repeated calls adjust level/stream on the
    handler already installed rather than stacking duplicates.
    """
    logger = logging.getLogger("repro")
    logger.setLevel(resolve_level(level))
    for handler in logger.handlers:
        if getattr(handler, _HANDLER_MARK, False):
            if stream is not None and isinstance(handler, logging.StreamHandler):
                handler.setStream(stream)
            return logger
    handler = logging.StreamHandler(stream or sys.stderr)
    handler.setFormatter(logging.Formatter(_FORMAT))
    handler.addFilter(_RunIdFilter())
    setattr(handler, _HANDLER_MARK, True)
    logger.addHandler(handler)
    # The repro tree is self-contained; don't double-print through an
    # application's root handlers.
    logger.propagate = False
    return logger
