"""Run-scoped trace identifiers.

Every analysis run (one ``AnalysisSession.analyze*`` call, one CLI
invocation, or one daemon request) is stamped with a short random hex
identifier.  The same id appears in log lines, in the exported Chrome
trace, and is shipped to parallel shard workers so that spans recorded
in subprocesses can be correlated with the parent run.

The id is *thread-local*: the service daemon handles requests on worker
threads and scopes one run id to each request, so interleaved log lines
from concurrent requests stay attributable.  Single-threaded callers
(the CLI, tests) see the old module-global behaviour unchanged.
"""

from __future__ import annotations

import os
import threading
from typing import Optional

_STATE = threading.local()


def new_run_id() -> str:
    """Install and return a fresh run identifier (12 hex chars)."""
    return set_run_id(os.urandom(6).hex())


def set_run_id(value: str) -> str:
    """Adopt an externally chosen run id (shard workers, the daemon)."""
    _STATE.run_id = value
    return value


def clear_run_id() -> None:
    """Drop this thread's run id (end of a daemon request)."""
    _STATE.run_id = None


def current_run_id() -> Optional[str]:
    """The active run id, or ``None`` before the first run starts."""
    return getattr(_STATE, "run_id", None)
