"""Run-scoped trace identifiers.

Every analysis run (one ``AnalysisSession.analyze*`` call, or one CLI
invocation) is stamped with a short random hex identifier.  The same id
appears in log lines, in the exported Chrome trace, and is shipped to
parallel shard workers so that spans recorded in subprocesses can be
correlated with the parent run.
"""

from __future__ import annotations

import os
from typing import Optional

_RUN_ID: Optional[str] = None


def new_run_id() -> str:
    """Install and return a fresh run identifier (12 hex chars)."""
    global _RUN_ID
    _RUN_ID = os.urandom(6).hex()
    return _RUN_ID


def set_run_id(value: str) -> str:
    """Adopt an externally chosen run id (used by shard workers)."""
    global _RUN_ID
    _RUN_ID = value
    return value


def current_run_id() -> Optional[str]:
    """The active run id, or ``None`` before the first run starts."""
    return _RUN_ID
