"""``repro.obs`` — always-available, dependency-free observability.

Three cooperating pieces, all stdlib-only:

- :mod:`repro.obs.tracer` — hierarchical span tracing, merged across
  the parallel solver's worker processes, exported as Chrome
  trace-event JSON (``spike-analyze analyze --trace out.json``).
- :mod:`repro.obs.metrics` — the process-wide labeled counter/maxima
  registry surfaced in ``--json`` payloads, ``--stats``, and the
  ``spike-analyze report`` subcommand.
- :mod:`repro.obs.log` — structured stdlib logging for the ``repro.*``
  tree, run-id-stamped, controlled by ``--log-level`` / ``REPRO_LOG``.

See ``docs/observability.md`` for the design and counter inventory.
"""

from __future__ import annotations

import os as _os

from repro.obs.hist import DEFAULT_BUCKETS, Histogram
from repro.obs.log import ENV_VAR, configure_logging, resolve_level
from repro.obs.metrics import (
    REGISTRY,
    MetricsRegistry,
    render_counters,
    render_key,
)
from repro.obs.prometheus import render_prometheus
from repro.obs.runid import (
    clear_run_id,
    current_run_id,
    new_run_id,
    set_run_id,
)
from repro.obs.tracer import (
    Tracer,
    disable as disable_tracing,
    enable as enable_tracing,
    get_tracer,
    is_enabled as tracing_enabled,
    span,
)

__all__ = [
    "DEFAULT_BUCKETS",
    "ENV_VAR",
    "Histogram",
    "REGISTRY",
    "MetricsRegistry",
    "Tracer",
    "configure_logging",
    "clear_run_id",
    "current_run_id",
    "disable_tracing",
    "enable_tracing",
    "get_tracer",
    "new_run_id",
    "render_counters",
    "render_key",
    "render_prometheus",
    "resolve_level",
    "set_run_id",
    "span",
    "tracing_enabled",
]

# Library users get logging with zero code changes: exporting
# REPRO_LOG=debug (or any level name) wires up the stderr handler the
# first time any instrumented module imports repro.obs.
if _os.environ.get(ENV_VAR):
    try:
        configure_logging()
    except ValueError:
        # An unparseable REPRO_LOG must never break analysis; the CLI
        # reports it properly when --log-level/REPRO_LOG is resolved.
        pass
