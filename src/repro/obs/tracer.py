"""Hierarchical span tracing for the analysis pipeline.

The tracer records *spans* — named, attributed wall-clock intervals —
around every interesting unit of work: CFG construction, DEF/UBD
initialisation, PSG build, per-SCC and per-shard phase-1/phase-2
solves, incremental invalidation, and summary-cache I/O.  Spans nest
naturally because they are plain context managers; the export renders
the nesting per thread.

Design constraints, in order:

1. **Near-zero cost when disabled.**  ``span(...)`` performs one
   attribute check and returns a shared no-op context manager — no
   allocation, no clock read.  Tracing is off unless the user passes
   ``--trace`` (or calls :func:`enable` directly).
2. **Works across process boundaries.**  Parallel shard workers run in
   forked subprocesses.  Each worker gets its own fresh tracer; its
   span buffer is drained and shipped back through the existing result
   pipe, and the parent merges it.  Timestamps are stored *wall-clock
   based* (``perf_counter`` plus a per-process wall offset sampled at
   tracer creation), so merged spans need no further correction:
   ``perf_counter`` is CLOCK_MONOTONIC on Linux, which is system-wide,
   and the wall offset anchors every process to the same epoch.
3. **No dependencies.**  Export is Chrome trace-event JSON — the
   ``{"traceEvents": [...]}`` format — which Perfetto
   (https://ui.perfetto.dev) and ``chrome://tracing`` load directly.
"""

from __future__ import annotations

import json
import os
import threading
import time
from typing import Any, Dict, IO, Iterable, List, Optional, Set, Tuple, Union

from repro.obs.runid import current_run_id, new_run_id, set_run_id

#: One recorded span, in the exact shape shipped across process
#: boundaries: ``(name, start_wall, duration_s, pid, tid, args)``.
#: ``start_wall`` is seconds since the Unix epoch; ``args`` holds only
#: JSON-friendly scalars.
SpanRecord = Tuple[str, float, float, int, int, Dict[str, Any]]


class _NullSpan:
    """Shared no-op context manager handed out while tracing is off."""

    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *exc: object) -> bool:
        return False


NULL_SPAN = _NullSpan()


class _Span:
    """A live span: records itself into the tracer on ``__exit__``."""

    __slots__ = ("_tracer", "_name", "_args", "_start")

    def __init__(self, tracer: "Tracer", name: str, args: Dict[str, Any]):
        self._tracer = tracer
        self._name = name
        self._args = args

    def __enter__(self) -> "_Span":
        self._start = time.perf_counter()
        return self

    def __exit__(self, *exc: object) -> bool:
        end = time.perf_counter()
        tracer = self._tracer
        # list.append is atomic under the GIL; spans from helper threads
        # interleave safely without a lock.
        tracer._spans.append(
            (
                self._name,
                self._start + tracer.wall_offset,
                end - self._start,
                os.getpid(),
                threading.get_ident(),
                self._args,
            )
        )
        return False


class Tracer:
    """Collects spans for one process; merges buffers from others."""

    def __init__(self, enabled: bool = False) -> None:
        self.enabled = enabled
        #: pid of the process that owns this tracer; in the exported
        #: trace it is labelled ``main`` and every other pid
        #: ``worker-<pid>``.
        self.root_pid = os.getpid()
        #: Correction from ``perf_counter`` time to wall-clock time,
        #: sampled once so every span in this process shares it.
        self.wall_offset = time.time() - time.perf_counter()
        self._spans: List[SpanRecord] = []

    # -- recording ----------------------------------------------------

    def span(self, name: str, **args: Any) -> Union[_Span, _NullSpan]:
        if not self.enabled:
            return NULL_SPAN
        return _Span(self, name, args)

    def record(
        self,
        name: str,
        start_wall: float,
        duration: float,
        args: Optional[Dict[str, Any]] = None,
    ) -> None:
        """Append a pre-measured span (rarely needed; prefer ``span``)."""
        self._spans.append(
            (name, start_wall, duration, os.getpid(),
             threading.get_ident(), args or {})
        )

    # -- cross-process plumbing ---------------------------------------

    def drain(self) -> List[SpanRecord]:
        """Detach and return the buffered spans (worker -> result pipe)."""
        spans, self._spans = self._spans, []
        return spans

    def merge(self, records: Iterable[SpanRecord]) -> None:
        """Absorb spans drained from another process's tracer."""
        self._spans.extend(tuple(record) for record in records)

    # -- inspection / export ------------------------------------------

    @property
    def spans(self) -> List[SpanRecord]:
        return list(self._spans)

    def pids(self) -> Set[int]:
        return {record[3] for record in self._spans}

    def to_chrome_trace(self) -> Dict[str, Any]:
        """Render the buffer as a Chrome trace-event JSON document."""
        records = list(self._spans)
        origin = min((record[1] for record in records), default=0.0)
        events: List[Dict[str, Any]] = []
        for name, start_wall, duration, pid, tid, args in records:
            event: Dict[str, Any] = {
                "name": name,
                "cat": "repro",
                "ph": "X",
                "ts": round((start_wall - origin) * 1e6, 3),
                "dur": round(duration * 1e6, 3),
                "pid": pid,
                "tid": tid,
            }
            if args:
                event["args"] = {
                    key: value
                    if isinstance(value, (int, float, bool)) or value is None
                    else str(value)
                    for key, value in args.items()
                }
            events.append(event)
        for pid in sorted(self.pids()):
            label = "main" if pid == self.root_pid else f"worker-{pid}"
            events.append(
                {
                    "name": "process_name",
                    "ph": "M",
                    "pid": pid,
                    "tid": 0,
                    "args": {"name": label},
                }
            )
        return {
            "traceEvents": events,
            "displayTimeUnit": "ms",
            "otherData": {
                "producer": "repro.obs.tracer",
                "run_id": current_run_id() or "",
            },
        }

    def export(self, destination: Union[str, IO[str]]) -> int:
        """Write the Chrome trace JSON to a path or open text file.

        Returns the number of spans exported.
        """
        document = self.to_chrome_trace()
        if hasattr(destination, "write"):
            json.dump(document, destination)  # type: ignore[arg-type]
        else:
            with open(destination, "w", encoding="utf-8") as handle:
                json.dump(document, handle)
        return len(self._spans)


_TRACER = Tracer(enabled=False)

# Per-thread tracer override.  The service daemon handles concurrent
# requests on separate threads and offers opt-in per-request tracing
# (``X-Repro-Trace: 1``); a single process-wide tracer would interleave
# every in-flight request's spans.  A request thread pushes its own
# tracer here and every ``span()``/``get_tracer()``/``is_enabled()``
# call on that thread uses it — including the solver internals, which
# never know they are inside a request.  Worker subprocesses forked
# from a request thread would inherit the slot, so
# ``parallel.reset_obs`` clears it (the worker's spans travel through
# the result pipe and are merged into the request tracer by the
# requesting thread itself).
_LOCAL = threading.local()


def push_local_tracer(tracer: Optional[Tracer] = None) -> Tracer:
    """Install a per-thread tracer override (request-scoped tracing).

    Returns the installed tracer (a fresh enabled one by default).
    Pair with :func:`pop_local_tracer` in a ``finally``.
    """
    if tracer is None:
        tracer = Tracer(enabled=True)
    _LOCAL.tracer = tracer
    return tracer


def pop_local_tracer() -> Optional[Tracer]:
    """Remove and return this thread's tracer override, if any."""
    tracer = getattr(_LOCAL, "tracer", None)
    _LOCAL.tracer = None
    return tracer


def clear_local_tracer() -> None:
    """Drop any inherited override (forked-worker initialisation)."""
    _LOCAL.tracer = None


def get_tracer() -> Tracer:
    local = getattr(_LOCAL, "tracer", None)
    return local if local is not None else _TRACER


def is_enabled() -> bool:
    local = getattr(_LOCAL, "tracer", None)
    return local.enabled if local is not None else _TRACER.enabled


def enable(run_id: Optional[str] = None) -> Tracer:
    """Install a fresh, enabled tracer (discarding any prior buffer).

    A run id is adopted if given, minted if none is active yet.  Used
    by the CLI's ``--trace`` flag and by shard-worker initialisation
    (where the parent's run id is passed in).
    """
    global _TRACER
    if run_id is not None:
        set_run_id(run_id)
    elif current_run_id() is None:
        new_run_id()
    _TRACER = Tracer(enabled=True)
    return _TRACER


def disable() -> Tracer:
    """Install a fresh, disabled tracer (discarding any prior buffer)."""
    global _TRACER
    _TRACER = Tracer(enabled=False)
    return _TRACER


def span(name: str, **args: Any) -> Union[_Span, _NullSpan]:
    """Open a span on the process-wide tracer.

    This is the instrumentation entry point used throughout the
    pipeline; when tracing is disabled it costs one thread-local
    lookup and one attribute check.
    """
    tracer = getattr(_LOCAL, "tracer", None) or _TRACER
    if not tracer.enabled:
        return NULL_SPAN
    return _Span(tracer, name, args)
