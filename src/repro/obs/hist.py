"""Log-bucketed latency histograms for the metrics registry.

Counters and maxima (``repro.obs.metrics``) answer "how much work" and
"how deep did it get"; neither answers "how is latency *distributed*".
A mean hides the tail, and the tail is the whole story for a service —
the ROADMAP's "millions of users" framing needs p50/p95/p99, not a
single wall clock.  This module supplies the third metric kind:

* :class:`Histogram` — fixed log-spaced bucket boundaries (a
  1-2.5-5 ladder from 100µs to 100s by default, chosen for request
  latencies), a per-bucket counter array, plus running ``count`` and
  ``sum``.  Observation is O(log buckets) (one bisect) and
  allocation-free.
* **Bucket-wise algebra** — histograms with identical boundaries
  merge by adding bucket counts (forked shard workers ship theirs
  through the existing result pipe; the parent adds them in) and
  subtract the same way, which is what gives
  :meth:`~repro.obs.metrics.MetricsRegistry.delta_since` honest
  per-run distributions: the delta of a merged histogram equals the
  merge of the per-worker deltas, bucket by bucket.
* :meth:`Histogram.quantile` — the standard Prometheus-style
  estimate: find the bucket the rank falls in, interpolate linearly
  inside it.  The error is bounded by bucket width (see
  ``docs/observability.md`` for the caveats); the boundaries are
  fixed so estimates are comparable across runs and mergeable across
  processes, which adaptive schemes are not.

Histograms are registered and observed through
:meth:`repro.obs.metrics.MetricsRegistry.observe_hist`; the registry
owns locking and cross-process plumbing.  Everything here is pure
state + arithmetic so it stays trivially serializable.
"""

from __future__ import annotations

from bisect import bisect_left
from typing import Dict, List, Sequence, Tuple

#: Default bucket upper bounds in seconds: a 1-2.5-5 ladder covering
#: 100µs (a warm dict-hit response) through 100s (a cold solve of a
#: paper-scale image).  The ``+Inf`` bucket is implicit — it is always
#: the final element of :attr:`Histogram.counts`.
DEFAULT_BUCKETS: Tuple[float, ...] = (
    0.0001, 0.00025, 0.0005,
    0.001, 0.0025, 0.005,
    0.01, 0.025, 0.05,
    0.1, 0.25, 0.5,
    1.0, 2.5, 5.0,
    10.0, 25.0, 50.0,
    100.0,
)

#: Serialized histogram state shipped across process boundaries:
#: ``(boundaries, counts, sum)``.  ``count`` is recomputed from the
#: bucket counts on load so the payload cannot self-contradict.
HistogramPayload = Tuple[Tuple[float, ...], Tuple[int, ...], float]


class Histogram:
    """Fixed-boundary bucketed distribution: counts, sum, quantiles.

    ``boundaries`` are inclusive upper bounds (``value <= bound`` lands
    in that bucket, matching Prometheus ``le`` semantics); values above
    the last boundary land in the implicit ``+Inf`` bucket.  Buckets
    are stored *non-cumulative* internally; the exposition layer
    renders them cumulative.
    """

    __slots__ = ("boundaries", "counts", "count", "sum")

    def __init__(self, boundaries: Sequence[float] = DEFAULT_BUCKETS) -> None:
        bounds = tuple(float(b) for b in boundaries)
        if not bounds or any(
            b <= a for a, b in zip(bounds, bounds[1:])
        ) or bounds[0] <= 0:
            raise ValueError(
                "histogram boundaries must be positive and strictly "
                f"increasing, got {bounds!r}"
            )
        self.boundaries = bounds
        self.counts: List[int] = [0] * (len(bounds) + 1)  # [..., +Inf]
        self.count = 0
        self.sum = 0.0

    # -- recording ----------------------------------------------------

    def observe(self, value: float) -> None:
        """Record one observation (negative values clamp to bucket 0)."""
        self.counts[bisect_left(self.boundaries, value)] += 1
        self.count += 1
        self.sum += value

    # -- algebra ------------------------------------------------------

    def _check_compatible(self, other: "Histogram") -> None:
        if self.boundaries != other.boundaries:
            raise ValueError(
                "histogram boundaries differ: "
                f"{self.boundaries!r} vs {other.boundaries!r}"
            )

    def merge(self, other: "Histogram") -> None:
        """Add ``other``'s buckets into this histogram (worker drain)."""
        self._check_compatible(other)
        for index, value in enumerate(other.counts):
            self.counts[index] += value
        self.count += other.count
        self.sum += other.sum

    def subtract(self, snapshot: "Histogram") -> "Histogram":
        """The bucket-wise delta since ``snapshot`` (a new histogram).

        ``snapshot`` must be an earlier state of this series: every
        bucket must have grown monotonically (counters never decrease),
        so the delta's buckets are all non-negative.
        """
        self._check_compatible(snapshot)
        delta = Histogram(self.boundaries)
        for index, value in enumerate(self.counts):
            diff = value - snapshot.counts[index]
            if diff < 0:
                raise ValueError(
                    "histogram snapshot is not an earlier state: bucket "
                    f"{index} shrank from {snapshot.counts[index]} to {value}"
                )
            delta.counts[index] = diff
        delta.count = self.count - snapshot.count
        delta.sum = self.sum - snapshot.sum
        return delta

    def copy(self) -> "Histogram":
        clone = Histogram(self.boundaries)
        clone.counts = list(self.counts)
        clone.count = self.count
        clone.sum = self.sum
        return clone

    # -- reading ------------------------------------------------------

    def quantile(self, q: float) -> float:
        """Estimate the ``q``-quantile (``0 <= q <= 1``) from buckets.

        Prometheus-style: locate the bucket the target rank falls in
        and interpolate linearly inside it (lower edge of the first
        bucket is 0).  Ranks landing in the ``+Inf`` bucket report the
        highest finite boundary — the estimate cannot exceed what the
        buckets resolve.  Returns 0.0 for an empty histogram.
        """
        if not 0 <= q <= 1:
            raise ValueError(f"quantile must be in [0, 1], got {q}")
        if self.count == 0:
            return 0.0
        rank = q * self.count
        seen = 0
        for index, bucket_count in enumerate(self.counts):
            if bucket_count == 0:
                continue
            if seen + bucket_count >= rank:
                if index >= len(self.boundaries):  # +Inf bucket
                    return self.boundaries[-1]
                lower = self.boundaries[index - 1] if index else 0.0
                upper = self.boundaries[index]
                fraction = (rank - seen) / bucket_count
                return lower + (upper - lower) * fraction
            seen += bucket_count
        return self.boundaries[-1]  # pragma: no cover - rank <= count

    def cumulative(self) -> List[Tuple[float, int]]:
        """``(le, cumulative_count)`` pairs, ``+Inf`` last — the
        exposition shape (``float("inf")`` for the final bound)."""
        out: List[Tuple[float, int]] = []
        running = 0
        for bound, bucket_count in zip(self.boundaries, self.counts):
            running += bucket_count
            out.append((bound, running))
        out.append((float("inf"), running + self.counts[-1]))
        return out

    def to_json(self) -> Dict[str, object]:
        """The compact summary carried in ``counters`` payloads:
        count, sum, and the three headline quantiles."""
        return {
            "count": self.count,
            "sum": round(self.sum, 9),
            "p50": round(self.quantile(0.50), 9),
            "p95": round(self.quantile(0.95), 9),
            "p99": round(self.quantile(0.99), 9),
        }

    # -- cross-process plumbing ---------------------------------------

    def to_payload(self) -> HistogramPayload:
        return (self.boundaries, tuple(self.counts), self.sum)

    @classmethod
    def from_payload(cls, payload: HistogramPayload) -> "Histogram":
        boundaries, counts, total = payload
        hist = cls(tuple(boundaries))
        counts = list(counts)
        if len(counts) != len(hist.counts):
            raise ValueError(
                f"payload has {len(counts)} buckets for "
                f"{len(hist.counts)} boundaries"
            )
        hist.counts = counts
        hist.count = sum(counts)
        hist.sum = float(total)
        return hist

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Histogram(count={self.count}, sum={self.sum:.6f}, "
            f"p50={self.quantile(0.5):.6f}, p99={self.quantile(0.99):.6f})"
        )
