"""Labeled counter/gauge/histogram registry for the analysis pipeline.

A single process-wide :data:`REGISTRY` accumulates named, labeled
counters (monotonic sums), maxima (high-water gauges) and histograms
(log-bucketed distributions, see :mod:`repro.obs.hist`), in the
Prometheus style: values are **cumulative for the life of the process**
and are never implicitly reset.  Consumers that want per-run numbers —
``AnalysisSession.metrics()``, the CLI ``--stats`` block — take a
:meth:`MetricsRegistry.snapshot` before the run and read
:meth:`MetricsRegistry.delta_since` after it; histogram deltas are
computed bucket-wise, so a delta over a worker-merged histogram equals
the sum of the per-worker deltas.

Counter inventory (see ``docs/observability.md`` for semantics):

=============================== =====================================
``solver.iterations{phase=}``    worklist node visits per solve phase
``solver.max_queue_depth{phase=}`` deepest worklist (max-merged)
``solver.pushes``                nodes scheduled onto a worklist
                                 (initial seeds included)
``solver.skipped_inqueue``       enqueues suppressed by the in-queue
                                 bitmap (duplicate-push savings;
                                 frozen boundary nodes are marked
                                 permanently in-queue, so their
                                 suppressions count here too)
``solver.revisits{phase=}``      visits of a node already visited in
                                 the same solve (ordering quality)
``solver.routine_iterations{phase=,routine=}``
                                 per-routine visit attribution; only
                                 recorded while :attr:`per_routine`
                                 is on (the ``report`` subcommand)
``psg.builds`` / ``psg.partial_builds``  graph constructions
``psg.nodes`` / ``psg.flow_edges`` / ``psg.call_return_edges`` /
``psg.branch_nodes``             PSG sizes, summed over builds
``cache.hit`` / ``cache.stale`` / ``cache.miss``  per-routine SUM2
                                 fingerprint verdicts on a run
``cache.load`` / ``cache.write`` (+ ``_bytes``)   SUM2 cache I/O
``sidecar.load`` / ``sidecar.write`` (+ ``_bytes``) SUM1 sidecar I/O
``store.hit`` / ``store.miss``   cross-image summary-store record
                                 lookups (a corrupt record is a miss)
``store.write`` / ``store.bytes`` records published and their sizes
``store.evict``                  records removed by a store GC sweep
``shards.solved{phase=}`` / ``shards.reused``     parallel scheduling
``query.requests``               demand-driven queries answered
``query.cone_routines{phase=}``  routines in the query's phase-1 /
                                 phase-2 cones, summed over queries
``query.solved`` / ``query.reused``  phase-2 work inside the cones
``query.memo_dropped``           cache entries (or grades) a query's
                                 memo write-back had to invalidate
``regset.constructed``           RegisterSet objects built
=============================== =====================================

Histogram series (``service.request.seconds{endpoint=,warm=}``,
``service.queue_wait.seconds{endpoint=}``,
``service.stage.seconds{stage=}``) are inventoried in
``docs/observability.md``; a name must not be reused across kinds
(counter vs maximum vs histogram).

Cross-process behaviour mirrors the tracer: forked shard workers reset
their inherited registry, accumulate locally, and ship
``collect(clear=True)`` payloads back through the result pipe; the
parent :meth:`merge`\\ s them (counters add, maxima max, histograms
bucket-add).
"""

from __future__ import annotations

import threading
from typing import Any, Dict, Iterable, List, Mapping, Tuple, Union

from repro.obs.hist import Histogram, HistogramPayload

#: Canonical key for one time series: ``(name, ((label, value), ...))``
#: with the label pairs sorted.
MetricKey = Tuple[str, Tuple[Tuple[str, str], ...]]

#: Serialisable registry payload shipped from workers to the parent:
#: ``(counter_items, maxima_items, histogram_items)``.  Pre-histogram
#: 2-tuples are still accepted by :meth:`MetricsRegistry.merge`.
MetricsPayload = Tuple[
    List[Tuple[MetricKey, float]],
    List[Tuple[MetricKey, float]],
    List[Tuple[MetricKey, HistogramPayload]],
]

#: One snapshot entry: a counter value, or a frozen histogram state.
SnapshotValue = Union[float, Histogram]

#: Keys that :meth:`MetricsRegistry.delta_since` always emits (as zero
#: when untouched) so ``--json`` consumers can rely on their presence.
SEEDED_KEYS: Tuple[MetricKey, ...] = (
    ("cache.hit", ()),
    ("cache.miss", ()),
    ("cache.stale", ()),
    ("cache.write", ()),
    ("frontend.routines", ()),
    ("query.requests", ()),
    ("query.solved", ()),
    ("query.reused", ()),
    ("query.memo_dropped", ()),
    ("solver.iterations", (("phase", "phase1"),)),
    ("solver.iterations", (("phase", "phase2"),)),
    ("solver.pushes", ()),
    ("solver.revisits", (("phase", "phase1"),)),
    ("solver.revisits", (("phase", "phase2"),)),
    ("solver.skipped_inqueue", ()),
    ("store.hit", ()),
    ("store.miss", ()),
    ("store.write", ()),
)


def _key(name: str, labels: Mapping[str, Any]) -> MetricKey:
    if not labels:
        return (name, ())
    return (
        name,
        tuple(sorted((key, str(value)) for key, value in labels.items())),
    )


def render_key(key: MetricKey) -> str:
    """``name`` or ``name{k=v,...}`` — the stable external spelling."""
    name, labels = key
    if not labels:
        return name
    inner = ",".join(f"{label}={value}" for label, value in labels)
    return f"{name}{{{inner}}}"


def _numeric(value: float) -> float:
    """Ints stay ints in JSON output; floats stay floats."""
    as_int = int(value)
    return as_int if as_int == value else value


class MetricsRegistry:
    """Cumulative labeled counters, maxima, and histograms."""

    def __init__(self) -> None:
        self._counters: Dict[MetricKey, float] = {}
        self._maxima: Dict[MetricKey, float] = {}
        self._histograms: Dict[MetricKey, Histogram] = {}
        # The service daemon records from concurrent request threads;
        # a read-modify-write on a dict slot is not atomic, so every
        # mutation and every multi-item read holds this lock.  The
        # single-threaded paths (CLI, tests) pay one uncontended
        # acquire per op.
        self._lock = threading.RLock()
        #: When true, the phase engines additionally attribute worklist
        #: visits to individual routines
        #: (``solver.routine_iterations``).  Off by default: the
        #: attribution pass is O(nodes) per solve and only the
        #: ``report`` subcommand reads it.
        self.per_routine = False

    # -- recording ----------------------------------------------------

    def inc(self, name: str, amount: float = 1, **labels: Any) -> None:
        key = _key(name, labels)
        with self._lock:
            self._counters[key] = self._counters.get(key, 0) + amount

    def observe_max(self, name: str, value: float, **labels: Any) -> None:
        key = _key(name, labels)
        with self._lock:
            if value > self._maxima.get(key, float("-inf")):
                self._maxima[key] = value

    def observe_hist(
        self,
        name: str,
        value: float,
        buckets: Iterable[float] = None,
        **labels: Any,
    ) -> None:
        """Record one observation into a histogram series.

        The series is created on first observation with ``buckets``
        (default :data:`~repro.obs.hist.DEFAULT_BUCKETS`); later
        observations ignore ``buckets`` — boundaries are fixed for the
        life of a series so states stay mergeable and subtractable.
        """
        key = _key(name, labels)
        with self._lock:
            hist = self._histograms.get(key)
            if hist is None:
                hist = self._histograms[key] = (
                    Histogram(buckets) if buckets is not None else Histogram()
                )
            hist.observe(value)

    # -- reading ------------------------------------------------------

    def value(self, name: str, **labels: Any) -> float:
        key = _key(name, labels)
        if key in self._counters:
            return self._counters[key]
        return self._maxima.get(key, 0)

    def labeled(self, name: str) -> List[Tuple[Dict[str, str], float]]:
        """All series with the given name: ``[(labels_dict, value)]``."""
        out: List[Tuple[Dict[str, str], float]] = []
        for store in (self._counters, self._maxima):
            for (series, labels), value in store.items():
                if series == name:
                    out.append((dict(labels), value))
        return out

    def histogram(self, name: str, **labels: Any) -> Histogram:
        """A frozen copy of one histogram series (``None`` if absent)."""
        key = _key(name, labels)
        with self._lock:
            hist = self._histograms.get(key)
            return hist.copy() if hist is not None else None

    def snapshot(self) -> Dict[MetricKey, SnapshotValue]:
        """Counter and histogram state now — pair with
        :meth:`delta_since`.  Counter entries are floats; histogram
        entries are frozen :class:`Histogram` copies under the same
        ``(name, labels)`` keys (the kinds never share a name)."""
        with self._lock:
            out: Dict[MetricKey, SnapshotValue] = dict(self._counters)
            for key, hist in self._histograms.items():
                out[key] = hist.copy()
            return out

    def delta_since(
        self, snapshot: Mapping[MetricKey, SnapshotValue]
    ) -> Dict[str, object]:
        """Per-run view: counter deltas, histogram deltas, maxima.

        Keys are rendered strings (``name{label=value}``), sorted, with
        :data:`SEEDED_KEYS` always present (zero when untouched) and
        maxima reported at their cumulative high-water mark.  Counter
        values are numbers; a histogram series touched since the
        snapshot appears as its bucket-wise delta's compact summary
        (``{"count", "sum", "p50", "p95", "p99"}`` — see
        :meth:`~repro.obs.hist.Histogram.to_json`).
        """
        with self._lock:
            counters = dict(self._counters)
            maxima = dict(self._maxima)
            histograms = {
                key: hist.copy() for key, hist in self._histograms.items()
            }
        out: Dict[str, object] = {}
        for key, value in counters.items():
            base = snapshot.get(key, 0)
            delta = value - (base if isinstance(base, (int, float)) else 0)
            if delta:
                out[render_key(key)] = _numeric(delta)
        for key in SEEDED_KEYS:
            out.setdefault(render_key(key), 0)
        for key, value in maxima.items():
            out[render_key(key)] = _numeric(value)
        for key, hist in histograms.items():
            base = snapshot.get(key)
            delta_hist = (
                hist.subtract(base) if isinstance(base, Histogram) else hist
            )
            if delta_hist.count:
                out[render_key(key)] = delta_hist.to_json()
        return dict(sorted(out.items()))

    def as_dict(self) -> Dict[str, float]:
        """Every scalar series, cumulative, keyed by rendered name.

        Histograms are deliberately excluded — existing consumers of
        this mapping (``/metricsz`` JSON, benchmark ``counters``)
        expect numeric values only; use :meth:`histograms_dict` for the
        distribution series.
        """
        with self._lock:
            counters = dict(self._counters)
            maxima = dict(self._maxima)
        out = {
            render_key(key): _numeric(value) for key, value in counters.items()
        }
        for key, value in maxima.items():
            out[render_key(key)] = _numeric(value)
        return dict(sorted(out.items()))

    def histograms_dict(self) -> Dict[str, Dict[str, object]]:
        """Every histogram series, cumulative: rendered key →
        ``{count, sum, p50, p95, p99, buckets: {le: cumulative}}``."""
        with self._lock:
            histograms = {
                render_key(key): hist.copy()
                for key, hist in self._histograms.items()
            }
        out: Dict[str, Dict[str, object]] = {}
        for rendered, hist in sorted(histograms.items()):
            payload = hist.to_json()
            payload["buckets"] = {
                ("+Inf" if bound == float("inf") else repr(bound)): total
                for bound, total in hist.cumulative()
            }
            out[rendered] = payload
        return out

    def dump(
        self,
    ) -> Tuple[
        Dict[MetricKey, float],
        Dict[MetricKey, float],
        Dict[MetricKey, Histogram],
    ]:
        """Frozen ``(counters, maxima, histograms)`` copies keyed by
        :data:`MetricKey` — the exposition renderer's input."""
        with self._lock:
            return (
                dict(self._counters),
                dict(self._maxima),
                {key: hist.copy() for key, hist in self._histograms.items()},
            )

    # -- cross-process plumbing ---------------------------------------

    def collect(self, clear: bool = False) -> MetricsPayload:
        """Detach a payload for the result pipe (worker side)."""
        with self._lock:
            payload = (
                list(self._counters.items()),
                list(self._maxima.items()),
                [
                    (key, hist.to_payload())
                    for key, hist in self._histograms.items()
                ],
            )
            if clear:
                self._counters = {}
                self._maxima = {}
                self._histograms = {}
        return payload

    def merge(self, payload: MetricsPayload) -> None:
        """Absorb a worker payload: counters add, maxima max,
        histograms bucket-add.  Pre-histogram 2-tuple payloads merge
        with no histogram section."""
        counters, maxima = payload[0], payload[1]
        histograms = payload[2] if len(payload) > 2 else ()
        with self._lock:
            self._merge_locked(counters, maxima)
            for key, hist_payload in histograms:
                key = (key[0], tuple(tuple(pair) for pair in key[1]))
                incoming = Histogram.from_payload(hist_payload)
                existing = self._histograms.get(key)
                if existing is None:
                    self._histograms[key] = incoming
                else:
                    existing.merge(incoming)

    def _merge_locked(self, counters, maxima) -> None:
        for key, value in counters:
            key = (key[0], tuple(tuple(pair) for pair in key[1]))
            self._counters[key] = self._counters.get(key, 0) + value
        for key, value in maxima:
            key = (key[0], tuple(tuple(pair) for pair in key[1]))
            if value > self._maxima.get(key, float("-inf")):
                self._maxima[key] = value

    def reset(self) -> None:
        """Drop everything (worker init after fork; tests)."""
        with self._lock:
            self._counters = {}
            self._maxima = {}
            self._histograms = {}


REGISTRY = MetricsRegistry()


def render_counters(counters: Mapping[str, float], indent: str = "  ") -> str:
    """Align a ``delta_since`` mapping for the CLI ``--stats`` block."""
    if not counters:
        return f"{indent}(no counters recorded)"
    width = max(len(name) for name in counters)
    lines = []
    for name in sorted(counters):
        value = counters[name]
        if isinstance(value, Mapping):  # histogram delta summary
            rendered = (
                f"count={value.get('count', 0):,} "
                f"p50={value.get('p50', 0):.6f} "
                f"p99={value.get('p99', 0):.6f}"
            )
        elif isinstance(value, int):
            rendered = f"{value:,}"
        else:
            rendered = f"{value:,.2f}"
        lines.append(f"{indent}{name:<{width}}  {rendered}")
    return "\n".join(lines)
