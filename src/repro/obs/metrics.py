"""Labeled counter/gauge registry for the analysis pipeline.

A single process-wide :data:`REGISTRY` accumulates named, labeled
counters (monotonic sums) and maxima (high-water gauges), in the
Prometheus style: values are **cumulative for the life of the process**
and are never implicitly reset.  Consumers that want per-run numbers —
``AnalysisSession.metrics()``, the CLI ``--stats`` block — take a
:meth:`MetricsRegistry.snapshot` before the run and read
:meth:`MetricsRegistry.delta_since` after it.

Counter inventory (see ``docs/observability.md`` for semantics):

=============================== =====================================
``solver.iterations{phase=}``    worklist node visits per solve phase
``solver.max_queue_depth{phase=}`` deepest worklist (max-merged)
``solver.pushes``                nodes scheduled onto a worklist
                                 (initial seeds included)
``solver.skipped_inqueue``       enqueues suppressed by the in-queue
                                 bitmap (duplicate-push savings;
                                 frozen boundary nodes are marked
                                 permanently in-queue, so their
                                 suppressions count here too)
``solver.revisits{phase=}``      visits of a node already visited in
                                 the same solve (ordering quality)
``solver.routine_iterations{phase=,routine=}``
                                 per-routine visit attribution; only
                                 recorded while :attr:`per_routine`
                                 is on (the ``report`` subcommand)
``psg.builds`` / ``psg.partial_builds``  graph constructions
``psg.nodes`` / ``psg.flow_edges`` / ``psg.call_return_edges`` /
``psg.branch_nodes``             PSG sizes, summed over builds
``cache.hit`` / ``cache.stale`` / ``cache.miss``  per-routine SUM2
                                 fingerprint verdicts on a run
``cache.load`` / ``cache.write`` (+ ``_bytes``)   SUM2 cache I/O
``sidecar.load`` / ``sidecar.write`` (+ ``_bytes``) SUM1 sidecar I/O
``shards.solved{phase=}`` / ``shards.reused``     parallel scheduling
``query.requests``               demand-driven queries answered
``query.cone_routines{phase=}``  routines in the query's phase-1 /
                                 phase-2 cones, summed over queries
``query.solved`` / ``query.reused``  phase-2 work inside the cones
``query.memo_dropped``           cache entries (or grades) a query's
                                 memo write-back had to invalidate
``regset.constructed``           RegisterSet objects built
=============================== =====================================

Cross-process behaviour mirrors the tracer: forked shard workers reset
their inherited registry, accumulate locally, and ship
``collect(clear=True)`` payloads back through the result pipe; the
parent :meth:`merge`\\ s them (counters add, maxima max).
"""

from __future__ import annotations

import threading
from typing import Any, Dict, Iterable, List, Mapping, Tuple

#: Canonical key for one time series: ``(name, ((label, value), ...))``
#: with the label pairs sorted.
MetricKey = Tuple[str, Tuple[Tuple[str, str], ...]]

#: Serialisable registry payload shipped from workers to the parent:
#: ``(counter_items, maxima_items)``.
MetricsPayload = Tuple[
    List[Tuple[MetricKey, float]], List[Tuple[MetricKey, float]]
]

#: Keys that :meth:`MetricsRegistry.delta_since` always emits (as zero
#: when untouched) so ``--json`` consumers can rely on their presence.
SEEDED_KEYS: Tuple[MetricKey, ...] = (
    ("cache.hit", ()),
    ("cache.miss", ()),
    ("cache.stale", ()),
    ("cache.write", ()),
    ("frontend.routines", ()),
    ("query.requests", ()),
    ("query.solved", ()),
    ("query.reused", ()),
    ("query.memo_dropped", ()),
    ("solver.iterations", (("phase", "phase1"),)),
    ("solver.iterations", (("phase", "phase2"),)),
    ("solver.pushes", ()),
    ("solver.revisits", (("phase", "phase1"),)),
    ("solver.revisits", (("phase", "phase2"),)),
    ("solver.skipped_inqueue", ()),
)


def _key(name: str, labels: Mapping[str, Any]) -> MetricKey:
    if not labels:
        return (name, ())
    return (
        name,
        tuple(sorted((key, str(value)) for key, value in labels.items())),
    )


def render_key(key: MetricKey) -> str:
    """``name`` or ``name{k=v,...}`` — the stable external spelling."""
    name, labels = key
    if not labels:
        return name
    inner = ",".join(f"{label}={value}" for label, value in labels)
    return f"{name}{{{inner}}}"


def _numeric(value: float) -> float:
    """Ints stay ints in JSON output; floats stay floats."""
    as_int = int(value)
    return as_int if as_int == value else value


class MetricsRegistry:
    """Cumulative labeled counters and maxima."""

    def __init__(self) -> None:
        self._counters: Dict[MetricKey, float] = {}
        self._maxima: Dict[MetricKey, float] = {}
        # The service daemon records from concurrent request threads;
        # a read-modify-write on a dict slot is not atomic, so every
        # mutation and every multi-item read holds this lock.  The
        # single-threaded paths (CLI, tests) pay one uncontended
        # acquire per op.
        self._lock = threading.RLock()
        #: When true, the phase engines additionally attribute worklist
        #: visits to individual routines
        #: (``solver.routine_iterations``).  Off by default: the
        #: attribution pass is O(nodes) per solve and only the
        #: ``report`` subcommand reads it.
        self.per_routine = False

    # -- recording ----------------------------------------------------

    def inc(self, name: str, amount: float = 1, **labels: Any) -> None:
        key = _key(name, labels)
        with self._lock:
            self._counters[key] = self._counters.get(key, 0) + amount

    def observe_max(self, name: str, value: float, **labels: Any) -> None:
        key = _key(name, labels)
        with self._lock:
            if value > self._maxima.get(key, float("-inf")):
                self._maxima[key] = value

    # -- reading ------------------------------------------------------

    def value(self, name: str, **labels: Any) -> float:
        key = _key(name, labels)
        if key in self._counters:
            return self._counters[key]
        return self._maxima.get(key, 0)

    def labeled(self, name: str) -> List[Tuple[Dict[str, str], float]]:
        """All series with the given name: ``[(labels_dict, value)]``."""
        out: List[Tuple[Dict[str, str], float]] = []
        for store in (self._counters, self._maxima):
            for (series, labels), value in store.items():
                if series == name:
                    out.append((dict(labels), value))
        return out

    def snapshot(self) -> Dict[MetricKey, float]:
        """Counter values now — pair with :meth:`delta_since`."""
        with self._lock:
            return dict(self._counters)

    def delta_since(self, snapshot: Mapping[MetricKey, float]) -> Dict[str, float]:
        """Per-run view: counter deltas plus current maxima.

        Keys are rendered strings (``name{label=value}``), sorted, with
        :data:`SEEDED_KEYS` always present (zero when untouched) and
        maxima reported at their cumulative high-water mark.
        """
        with self._lock:
            counters = dict(self._counters)
            maxima = dict(self._maxima)
        out: Dict[str, float] = {}
        for key, value in counters.items():
            delta = value - snapshot.get(key, 0)
            if delta:
                out[render_key(key)] = _numeric(delta)
        for key in SEEDED_KEYS:
            out.setdefault(render_key(key), 0)
        for key, value in maxima.items():
            out[render_key(key)] = _numeric(value)
        return dict(sorted(out.items()))

    def as_dict(self) -> Dict[str, float]:
        """Every series, cumulative, keyed by rendered name."""
        with self._lock:
            counters = dict(self._counters)
            maxima = dict(self._maxima)
        out = {
            render_key(key): _numeric(value) for key, value in counters.items()
        }
        for key, value in maxima.items():
            out[render_key(key)] = _numeric(value)
        return dict(sorted(out.items()))

    # -- cross-process plumbing ---------------------------------------

    def collect(self, clear: bool = False) -> MetricsPayload:
        """Detach a payload for the result pipe (worker side)."""
        with self._lock:
            payload = (
                list(self._counters.items()),
                list(self._maxima.items()),
            )
            if clear:
                self._counters = {}
                self._maxima = {}
        return payload

    def merge(self, payload: MetricsPayload) -> None:
        """Absorb a worker payload: counters add, maxima max."""
        counters, maxima = payload
        with self._lock:
            self._merge_locked(counters, maxima)

    def _merge_locked(self, counters, maxima) -> None:
        for key, value in counters:
            key = (key[0], tuple(tuple(pair) for pair in key[1]))
            self._counters[key] = self._counters.get(key, 0) + value
        for key, value in maxima:
            key = (key[0], tuple(tuple(pair) for pair in key[1]))
            if value > self._maxima.get(key, float("-inf")):
                self._maxima[key] = value

    def reset(self) -> None:
        """Drop everything (worker init after fork; tests)."""
        with self._lock:
            self._counters = {}
            self._maxima = {}


REGISTRY = MetricsRegistry()


def render_counters(counters: Mapping[str, float], indent: str = "  ") -> str:
    """Align a ``delta_since`` mapping for the CLI ``--stats`` block."""
    if not counters:
        return f"{indent}(no counters recorded)"
    width = max(len(name) for name in counters)
    lines = []
    for name in sorted(counters):
        value = counters[name]
        rendered = f"{value:,}" if isinstance(value, int) else f"{value:,.2f}"
        lines.append(f"{indent}{name:<{width}}  {rendered}")
    return "\n".join(lines)
