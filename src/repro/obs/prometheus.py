"""Prometheus text exposition for the metrics registry.

``/metricsz`` speaks JSON by default; this module renders the same
registry state in the `Prometheus text format
<https://prometheus.io/docs/instrumenting/exposition_formats/>`_ so a
standard scraper (or ``tools/validate_prometheus.py`` in CI) can
consume it:

* counters → ``# TYPE <name> counter`` samples,
* maxima → ``# TYPE <name> gauge`` samples (a high-water mark is not
  monotonic across restarts, so gauge is the honest type),
* histograms → the canonical ``_bucket``/``_sum``/``_count`` triplet
  with cumulative, ``le``-ordered buckets ending in ``+Inf``.

Metric names are sanitized (dots and other invalid characters become
underscores — ``solver.iterations`` is exposed as
``solver_iterations``); label *names* get the same treatment and label
*values* are escaped per the spec (backslash, double-quote, newline).
Rendering reads one frozen :meth:`~repro.obs.metrics.MetricsRegistry.dump`
so a concurrent request thread can never tear a sample family.
"""

from __future__ import annotations

import re
from typing import Dict, Iterable, List, Tuple

from repro.obs.hist import Histogram
from repro.obs.metrics import REGISTRY, MetricKey, MetricsRegistry

_NAME_OK = re.compile(r"[a-zA-Z_:][a-zA-Z0-9_:]*$")
_NAME_BAD_CHARS = re.compile(r"[^a-zA-Z0-9_:]")
_LABEL_BAD_CHARS = re.compile(r"[^a-zA-Z0-9_]")


def sanitize_metric_name(name: str) -> str:
    """Map a registry series name onto the Prometheus grammar."""
    out = _NAME_BAD_CHARS.sub("_", name)
    if not out or not _NAME_OK.match(out):
        out = "_" + out
    return out


def sanitize_label_name(name: str) -> str:
    out = _LABEL_BAD_CHARS.sub("_", name)
    if not out or out[0].isdigit():
        out = "_" + out
    return out


def escape_label_value(value: str) -> str:
    """Backslash-escape ``\\``, ``"`` and newline, per the spec."""
    return (
        value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")
    )


def _format_value(value: float) -> str:
    if value == float("inf"):
        return "+Inf"
    if value == float("-inf"):
        return "-Inf"
    as_int = int(value)
    if as_int == value:
        return str(as_int)
    return repr(value)


def _labels_text(labels: Iterable[Tuple[str, str]]) -> str:
    parts = [
        f'{sanitize_label_name(label)}="{escape_label_value(str(value))}"'
        for label, value in labels
    ]
    return "{" + ",".join(parts) + "}" if parts else ""


def _grouped(
    store: Dict[MetricKey, object],
) -> Dict[str, List[Tuple[Tuple[Tuple[str, str], ...], object]]]:
    """Group series by sanitized metric name (one TYPE line per family),
    sorted for deterministic output."""
    families: Dict[str, List] = {}
    for (name, labels), value in sorted(store.items()):
        families.setdefault(sanitize_metric_name(name), []).append(
            (labels, value)
        )
    return dict(sorted(families.items()))


def _render_scalar_family(
    lines: List[str], name: str, kind: str, series: List
) -> None:
    lines.append(f"# TYPE {name} {kind}")
    for labels, value in series:
        lines.append(f"{name}{_labels_text(labels)} {_format_value(value)}")


def _render_histogram_family(
    lines: List[str], name: str, series: List[Tuple[tuple, Histogram]]
) -> None:
    lines.append(f"# TYPE {name} histogram")
    for labels, hist in series:
        for bound, cumulative_count in hist.cumulative():
            le = (
                "+Inf" if bound == float("inf") else _format_value(bound)
            )
            bucket_labels = tuple(labels) + (("le", le),)
            lines.append(
                f"{name}_bucket{_labels_text(bucket_labels)} "
                f"{cumulative_count}"
            )
        lines.append(f"{name}_sum{_labels_text(labels)} {repr(hist.sum)}")
        lines.append(f"{name}_count{_labels_text(labels)} {hist.count}")


def render_prometheus(registry: MetricsRegistry = None) -> str:
    """The whole registry as Prometheus text exposition (trailing
    newline included, as scrapers expect)."""
    counters, maxima, histograms = (registry or REGISTRY).dump()
    lines: List[str] = []
    for name, series in _grouped(counters).items():
        _render_scalar_family(lines, name, "counter", series)
    for name, series in _grouped(maxima).items():
        _render_scalar_family(lines, name, "gauge", series)
    for name, series in _grouped(histograms).items():
        _render_histogram_family(lines, name, series)
    return "\n".join(lines) + "\n" if lines else ""
