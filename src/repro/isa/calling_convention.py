"""The Windows NT calling standard for Alpha.

Section 3.4 and 3.5 of the paper rely on the calling standard
[CALLSTD] in two ways:

* *callee-saved registers* must be saved by a routine before use and
  restored before exit, so their definitions and uses must not propagate
  to callers (§3.4);
* *indirect calls to unknown targets* are assumed to obey the standard:
  argument registers are call-used, return-value registers are
  call-defined, and temporary (caller-saved) registers are call-killed
  (§3.5).

This module encodes those register roles.  The role partition follows the
Alpha calling standard:

========  =======================  ==========================
Role      Integer registers        Floating-point registers
========  =======================  ==========================
return    r0 (v0)                  f0, f1
temp      r1–r8, r22–r25, r27,     f10–f15, f22–f30
          r28
saved     r9–r14, r15 (fp)         f2–f9
args      r16–r21 (a0–a5)          f16–f21
special   r26 (ra), r29 (gp),      f31 (zero)
          r30 (sp), r31 (zero)
========  =======================  ==========================
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import FrozenSet, Tuple

from repro.isa.registers import (
    GLOBAL_POINTER,
    NUM_INTEGER_REGISTERS,
    RETURN_ADDRESS,
    STACK_POINTER,
    Register,
)


def _ints(*numbers: int) -> FrozenSet[Register]:
    return frozenset(Register.integer(n) for n in numbers)


def _floats(*numbers: int) -> FrozenSet[Register]:
    return frozenset(Register.float(n) for n in numbers)


@dataclass(frozen=True)
class CallingConvention:
    """A partition of the register file into calling-standard roles.

    All sets are frozen sets of :class:`~repro.isa.registers.Register`.
    The partition must be consistent: every register belongs to at most
    one of ``argument_registers`` / ``return_registers`` /
    ``callee_saved`` / ``temporaries`` (``return_registers`` may overlap
    ``temporaries`` since return registers are caller-saved).
    """

    name: str
    #: Registers used to pass the first arguments (a0-a5, f16-f21).
    argument_registers: FrozenSet[Register]
    #: Registers used to return values (v0, f0, f1).
    return_registers: FrozenSet[Register]
    #: Registers a callee must preserve (s0-s5, fp, f2-f9).
    callee_saved: FrozenSet[Register]
    #: Caller-saved scratch registers (t0-t11, pv, at, f10-f15, f22-f30).
    temporaries: FrozenSet[Register]
    #: The stack pointer; preserved across calls by convention.
    stack_pointer: Register = field(default_factory=lambda: Register(STACK_POINTER))
    #: The return-address register, written by call instructions.
    return_address: Register = field(default_factory=lambda: Register(RETURN_ADDRESS))
    #: The global pointer; treated as preserved across calls.
    global_pointer: Register = field(default_factory=lambda: Register(GLOBAL_POINTER))

    def __post_init__(self) -> None:
        groups: Tuple[FrozenSet[Register], ...] = (
            self.argument_registers,
            self.callee_saved,
            self.temporaries,
        )
        seen: set = set()
        for group in groups:
            overlap = seen & set(group)
            if overlap:
                raise ValueError(
                    f"register roles overlap in convention {self.name!r}: {overlap}"
                )
            seen.update(group)

    @property
    def caller_saved(self) -> FrozenSet[Register]:
        """Registers a caller must assume are clobbered by any call."""
        return (
            self.temporaries
            | self.return_registers
            | self.argument_registers
            | frozenset({self.return_address})
        )

    @property
    def preserved_across_calls(self) -> FrozenSet[Register]:
        """Registers guaranteed to survive a conforming call."""
        return self.callee_saved | frozenset(
            {self.stack_pointer, self.global_pointer}
        )

    def unknown_call_used(self) -> FrozenSet[Register]:
        """Registers assumed used by a call to an unknown target (§3.5).

        Arguments may be read, the callee's return needs the return
        address, and any conforming callee reads the stack and global
        pointers.
        """
        return self.argument_registers | frozenset(
            {self.return_address, self.stack_pointer, self.global_pointer}
        )

    def unknown_call_defined(self) -> FrozenSet[Register]:
        """Registers assumed defined by a call to an unknown target (§3.5)."""
        return self.return_registers

    def unknown_call_killed(self) -> FrozenSet[Register]:
        """Registers assumed killed by a call to an unknown target (§3.5)."""
        return self.caller_saved

    def unknown_jump_live(self) -> FrozenSet[Register]:
        """Registers assumed live at an unknown indirect-jump target (§3.5).

        The paper conservatively assumes *all* registers are live.
        """
        from repro.isa.registers import ALL_REGISTERS

        return frozenset(ALL_REGISTERS)

    def is_callee_saved(self, register: Register) -> bool:
        """True when ``register`` must be preserved by callees."""
        return register in self.callee_saved


def _nt_alpha() -> CallingConvention:
    return CallingConvention(
        name="nt-alpha",
        argument_registers=_ints(16, 17, 18, 19, 20, 21)
        | _floats(16, 17, 18, 19, 20, 21),
        return_registers=_ints(0) | _floats(0, 1),
        callee_saved=_ints(9, 10, 11, 12, 13, 14, 15) | _floats(2, 3, 4, 5, 6, 7, 8, 9),
        temporaries=_ints(1, 2, 3, 4, 5, 6, 7, 8, 22, 23, 24, 25, 27, 28)
        | _floats(10, 11, 12, 13, 14, 15, 22, 23, 24, 25, 26, 27, 28, 29, 30),
    )


#: The Windows NT Alpha calling standard used throughout the paper.
NT_ALPHA: CallingConvention = _nt_alpha()


def integer_registers_of(convention: CallingConvention) -> FrozenSet[Register]:
    """The integer subset of every role in ``convention`` (helper for tests)."""
    members = (
        convention.argument_registers
        | convention.return_registers
        | convention.callee_saved
        | convention.temporaries
    )
    return frozenset(r for r in members if r.index < NUM_INTEGER_REGISTERS)
