"""Binary encoding and decoding of instructions.

Instructions are encoded as 32-bit little-endian words using the Alpha
AXP instruction formats:

* **operate** (integer): ``major[31:26] ra[25:21] rb[20:16] 000 0
  func[11:5] rc[4:0]``; with an 8-bit literal the layout is
  ``major ra lit[20:13] 1 func[11:5] rc``;
* **operate** (floating-point): ``major[31:26] fa[25:21] fb[20:16]
  func[15:5] fc[4:0]`` — an 11-bit function field, no literal form;
* **memory**: ``major[31:26] ra[25:21] rb[20:16] disp[15:0]`` with a
  signed 16-bit byte displacement;
* **branch**: ``major[31:26] ra[25:21] disp[20:0]`` with a signed 21-bit
  displacement counted in instruction words;
* **jump**: ``0x1A ra[25:21] rb[20:16] type[15:14] hint[13:0]``;
* **pal**: ``0x00 func[25:0]``.

Register fields store the 5-bit number within the integer or floating
register file; whether a field refers to the integer or the floating file
is a static property of the opcode (see :data:`FIELD_FILES`).
"""

from __future__ import annotations

import struct
from typing import Dict, Iterable, List, Tuple

from repro.isa.instructions import (
    ControlKind,
    Format,
    Instruction,
    Opcode,
)
from repro.isa.registers import NUM_INTEGER_REGISTERS

#: Size of one encoded instruction, in bytes.
INSTRUCTION_SIZE = 4

_WORD = struct.Struct("<I")


class EncodingError(ValueError):
    """Raised when an instruction cannot be encoded or decoded."""


# ----------------------------------------------------------------------
# Which register file does each field of each opcode use?
# ----------------------------------------------------------------------

_INT = "i"
_FP = "f"


def _field_files(opcode: Opcode) -> Tuple[str, str, str]:
    """Files (integer/float) for the (ra, rb, rc) fields of ``opcode``."""
    if opcode is Opcode.ITOFT:
        return (_INT, _INT, _FP)
    if opcode is Opcode.FTOIT:
        return (_FP, _FP, _INT)
    fmt = opcode.format
    if fmt == Format.OPERATE_FP:
        return (_FP, _FP, _FP)
    if fmt == Format.MEMORY_FP:
        return (_FP, _INT, _INT)
    if fmt == Format.BRANCH_FP:
        return (_FP, _INT, _INT)
    return (_INT, _INT, _INT)


#: Per-opcode (ra, rb, rc) register-file assignment.
FIELD_FILES: Dict[Opcode, Tuple[str, str, str]] = {
    op: _field_files(op) for op in Opcode
}


def _to_field(index: int, file: str, opcode: Opcode) -> int:
    """Unified register index -> 5-bit field value."""
    if file == _FP:
        if index < NUM_INTEGER_REGISTERS:
            raise EncodingError(
                f"{opcode.mnemonic}: expected a floating register, got index {index}"
            )
        return index - NUM_INTEGER_REGISTERS
    if index >= NUM_INTEGER_REGISTERS:
        raise EncodingError(
            f"{opcode.mnemonic}: expected an integer register, got index {index}"
        )
    return index


def _from_field(field: int, file: str) -> int:
    """5-bit field value -> unified register index."""
    return field + NUM_INTEGER_REGISTERS if file == _FP else field


# ----------------------------------------------------------------------
# Decode tables
# ----------------------------------------------------------------------

def _build_tables() -> Tuple[
    Dict[int, Opcode],
    Dict[int, Opcode],
    Dict[Tuple[int, int], Opcode],
    Dict[int, Opcode],
    Dict[int, Opcode],
]:
    memory: Dict[int, Opcode] = {}
    branch: Dict[int, Opcode] = {}
    operate: Dict[Tuple[int, int], Opcode] = {}
    jump: Dict[int, Opcode] = {}
    pal: Dict[int, Opcode] = {}
    for op in Opcode:
        info = op.info
        if op.format in (Format.MEMORY, Format.MEMORY_FP):
            if info.major in memory:
                raise AssertionError(f"duplicate memory major {info.major:#x}")
            memory[info.major] = op
        elif op.format in (Format.BRANCH, Format.BRANCH_FP):
            if info.major in branch:
                raise AssertionError(f"duplicate branch major {info.major:#x}")
            branch[info.major] = op
        elif op.format in (Format.OPERATE, Format.OPERATE_FP):
            key = (info.major, info.function)
            if key in operate:
                raise AssertionError(f"duplicate operate opcode {key}")
            operate[key] = op
        elif op.format == Format.JUMP:
            jump[info.function] = op
        elif op.format == Format.PAL:
            pal[info.function] = op
    return memory, branch, operate, jump, pal


(_MEMORY_MAJORS, _BRANCH_MAJORS, _OPERATE_FUNCS, _JUMP_TYPES, _PAL_FUNCS) = (
    _build_tables()
)

_OPERATE_MAJORS = frozenset(major for (major, _f) in _OPERATE_FUNCS)
_FP_OPERATE_MAJORS = frozenset(
    op.info.major for op in Opcode if op.format == Format.OPERATE_FP
)
_JUMP_MAJOR = Opcode.JMP.info.major
_PAL_MAJOR = Opcode.HALT.info.major


def _signed(value: int, bits: int) -> int:
    if value >= 1 << (bits - 1):
        value -= 1 << bits
    return value


def _unsigned(value: int, bits: int, what: str) -> int:
    low = -(1 << (bits - 1))
    high = (1 << (bits - 1)) - 1
    if not low <= value <= high:
        raise EncodingError(f"{what} {value} out of signed {bits}-bit range")
    return value & ((1 << bits) - 1)


# ----------------------------------------------------------------------
# Encoding
# ----------------------------------------------------------------------

def encode_instruction(instruction: Instruction) -> int:
    """Encode ``instruction`` into its 32-bit word."""
    op = instruction.opcode
    info = op.info
    files = FIELD_FILES[op]
    fmt = op.format
    word = info.major << 26

    if fmt == Format.OPERATE:
        ra = _to_field(instruction.ra, files[0], op)
        rc = _to_field(instruction.rc, files[2], op)
        if instruction.literal is not None:
            word |= ra << 21
            word |= (instruction.literal & 0xFF) << 13
            word |= 1 << 12
        else:
            rb = _to_field(instruction.rb, files[1], op)
            word |= ra << 21
            word |= rb << 16
        word |= (info.function & 0x7F) << 5
        word |= rc
        return word

    if fmt == Format.OPERATE_FP:
        if instruction.literal is not None:
            raise EncodingError(f"{op.mnemonic}: no literal form")
        ra = _to_field(instruction.ra, files[0], op)
        rb = _to_field(instruction.rb, files[1], op)
        rc = _to_field(instruction.rc, files[2], op)
        word |= ra << 21
        word |= rb << 16
        word |= (info.function & 0x7FF) << 5
        word |= rc
        return word

    if fmt in (Format.MEMORY, Format.MEMORY_FP):
        ra = _to_field(instruction.ra, files[0], op)
        rb = _to_field(instruction.rb, files[1], op)
        word |= ra << 21
        word |= rb << 16
        word |= _unsigned(instruction.displacement, 16, "memory displacement")
        return word

    if fmt in (Format.BRANCH, Format.BRANCH_FP):
        ra = _to_field(instruction.ra, files[0], op)
        word |= ra << 21
        word |= _unsigned(instruction.displacement, 21, "branch displacement")
        return word

    if fmt == Format.JUMP:
        ra = _to_field(instruction.ra, files[0], op)
        rb = _to_field(instruction.rb, files[1], op)
        word |= ra << 21
        word |= rb << 16
        word |= (info.function & 0x3) << 14
        return word

    # PAL
    word |= info.function & 0x03FF_FFFF
    return word


def decode_instruction(word: int) -> Instruction:
    """Decode a 32-bit word back into an :class:`Instruction`."""
    if not 0 <= word < 1 << 32:
        raise EncodingError(f"word {word:#x} is not a 32-bit value")
    major = (word >> 26) & 0x3F

    if major == _PAL_MAJOR:
        function = word & 0x03FF_FFFF
        opcode = _PAL_FUNCS.get(function)
        if opcode is None:
            raise EncodingError(f"unknown PAL function {function:#x}")
        return Instruction(opcode)

    if major == _JUMP_MAJOR:
        jump_type = (word >> 14) & 0x3
        opcode = _JUMP_TYPES.get(jump_type)
        if opcode is None:
            raise EncodingError(f"unknown jump type {jump_type}")
        files = FIELD_FILES[opcode]
        return Instruction(
            opcode,
            ra=_from_field((word >> 21) & 0x1F, files[0]),
            rb=_from_field((word >> 16) & 0x1F, files[1]),
        )

    if major in _MEMORY_MAJORS:
        opcode = _MEMORY_MAJORS[major]
        files = FIELD_FILES[opcode]
        return Instruction(
            opcode,
            ra=_from_field((word >> 21) & 0x1F, files[0]),
            rb=_from_field((word >> 16) & 0x1F, files[1]),
            displacement=_signed(word & 0xFFFF, 16),
        )

    if major in _BRANCH_MAJORS:
        opcode = _BRANCH_MAJORS[major]
        files = FIELD_FILES[opcode]
        return Instruction(
            opcode,
            ra=_from_field((word >> 21) & 0x1F, files[0]),
            displacement=_signed(word & 0x1F_FFFF, 21),
        )

    if major in _FP_OPERATE_MAJORS:
        function = (word >> 5) & 0x7FF
        opcode = _OPERATE_FUNCS.get((major, function))
        if opcode is None:
            raise EncodingError(
                f"unknown FP operate major={major:#x} function={function:#x}"
            )
        files = FIELD_FILES[opcode]
        return Instruction(
            opcode,
            ra=_from_field((word >> 21) & 0x1F, files[0]),
            rb=_from_field((word >> 16) & 0x1F, files[1]),
            rc=_from_field(word & 0x1F, files[2]),
        )

    if major in _OPERATE_MAJORS:
        function = (word >> 5) & 0x7F
        opcode = _OPERATE_FUNCS.get((major, function))
        if opcode is None:
            raise EncodingError(
                f"unknown operate major={major:#x} function={function:#x}"
            )
        files = FIELD_FILES[opcode]
        ra = _from_field((word >> 21) & 0x1F, files[0])
        rc = _from_field(word & 0x1F, files[2])
        if (word >> 12) & 1:
            literal = (word >> 13) & 0xFF
            return Instruction(opcode, ra=ra, rc=rc, literal=literal)
        rb = _from_field((word >> 16) & 0x1F, files[1])
        return Instruction(opcode, ra=ra, rb=rb, rc=rc)

    raise EncodingError(f"unknown major opcode {major:#x}")


# ----------------------------------------------------------------------
# Bulk helpers
# ----------------------------------------------------------------------

def encode_stream(instructions: Iterable[Instruction]) -> bytes:
    """Encode a sequence of instructions into contiguous code bytes."""
    return b"".join(_WORD.pack(encode_instruction(i)) for i in instructions)


def decode_stream(code: bytes) -> List[Instruction]:
    """Decode contiguous code bytes back into instructions."""
    if len(code) % INSTRUCTION_SIZE:
        raise EncodingError(
            f"code length {len(code)} is not a multiple of {INSTRUCTION_SIZE}"
        )
    return [
        decode_instruction(_WORD.unpack_from(code, offset)[0])
        for offset in range(0, len(code), INSTRUCTION_SIZE)
    ]
