"""The Alpha register file.

The Alpha architecture has 32 integer registers (``r0`` .. ``r31``) and 32
floating-point registers (``f0`` .. ``f31``).  Register ``r31`` and ``f31``
always read as zero and discard writes.  Spike's dataflow analysis tracks
all 64 registers uniformly; a register is identified by a small integer
index in ``[0, 64)`` where indices ``0..31`` are the integer registers and
``32..63`` are the floating-point registers.

The conventional Alpha software names (``v0``, ``t0``–``t11``, ``s0``–``s5``,
``a0``–``a5``, ``ra``, ``pv``, ``at``, ``gp``, ``sp``, ``zero``) are
provided for readability in assembly listings and tests.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterator, List, Optional, Tuple

#: Total number of architectural registers tracked by the analysis.
NUM_REGISTERS = 64

#: Number of integer registers (indices ``0..31``).
NUM_INTEGER_REGISTERS = 32

#: Number of floating-point registers (indices ``32..63``).
NUM_FLOAT_REGISTERS = 32

#: Index of the integer zero register ``r31``.
ZERO_REGISTER = 31

#: Index of the floating-point zero register ``f31``.
FLOAT_ZERO_REGISTER = 63

#: Index of the stack pointer ``r30`` (``sp``).
STACK_POINTER = 30

#: Index of the return-address register ``r26`` (``ra``).
RETURN_ADDRESS = 26

#: Index of the procedure-value register ``r27`` (``pv`` / ``t12``).
PROCEDURE_VALUE = 27

#: Index of the global-pointer register ``r29`` (``gp``).
GLOBAL_POINTER = 29

#: Index of the frame-pointer register ``r15`` (``fp`` / ``s6``).
FRAME_POINTER = 15


@dataclass(frozen=True, order=True)
class Register:
    """An architectural register, identified by its index.

    ``Register`` is a tiny value type: two registers compare equal exactly
    when their indices are equal, and registers sort by index.  The class
    carries helpers to map between indices, hardware names (``r4``,
    ``f2``) and software names (``t3``, ``s0``).
    """

    index: int

    def __post_init__(self) -> None:
        if not 0 <= self.index < NUM_REGISTERS:
            raise ValueError(
                f"register index {self.index} out of range [0, {NUM_REGISTERS})"
            )

    @property
    def is_integer(self) -> bool:
        """True for ``r0``..``r31``."""
        return self.index < NUM_INTEGER_REGISTERS

    @property
    def is_float(self) -> bool:
        """True for ``f0``..``f31``."""
        return self.index >= NUM_INTEGER_REGISTERS

    @property
    def is_zero(self) -> bool:
        """True for the hardwired zero registers ``r31`` and ``f31``."""
        return self.index in (ZERO_REGISTER, FLOAT_ZERO_REGISTER)

    @property
    def hardware_name(self) -> str:
        """The architectural name: ``r<n>`` or ``f<n>``."""
        if self.is_integer:
            return f"r{self.index}"
        return f"f{self.index - NUM_INTEGER_REGISTERS}"

    @property
    def name(self) -> str:
        """The conventional software name (falls back to hardware name)."""
        return _SOFTWARE_NAMES.get(self.index, self.hardware_name)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Register({self.name})"

    def __str__(self) -> str:
        return self.name

    @classmethod
    def integer(cls, number: int) -> "Register":
        """The integer register ``r<number>``."""
        if not 0 <= number < NUM_INTEGER_REGISTERS:
            raise ValueError(f"no integer register r{number}")
        return cls(number)

    @classmethod
    def float(cls, number: int) -> "Register":
        """The floating-point register ``f<number>``."""
        if not 0 <= number < NUM_FLOAT_REGISTERS:
            raise ValueError(f"no float register f{number}")
        return cls(NUM_INTEGER_REGISTERS + number)

    @classmethod
    def parse(cls, text: str) -> "Register":
        """Parse a register from its hardware or software name.

        >>> Register.parse("r4").index
        4
        >>> Register.parse("sp").index
        30
        >>> Register.parse("f2").index
        34
        """
        name = text.strip().lower()
        if name in _NAME_TO_INDEX:
            return cls(_NAME_TO_INDEX[name])
        raise ValueError(f"unknown register name {text!r}")


def _build_software_names() -> Dict[int, str]:
    """Alpha software register names per the calling standard."""
    names: Dict[int, str] = {0: "v0"}
    for i in range(8):  # t0..t7 = r1..r8
        names[1 + i] = f"t{i}"
    for i in range(6):  # s0..s5 = r9..r14
        names[9 + i] = f"s{i}"
    names[FRAME_POINTER] = "fp"
    for i in range(6):  # a0..a5 = r16..r21
        names[16 + i] = f"a{i}"
    for i in range(4):  # t8..t11 = r22..r25
        names[22 + i] = f"t{8 + i}"
    names[RETURN_ADDRESS] = "ra"
    names[PROCEDURE_VALUE] = "pv"
    names[28] = "at"
    names[GLOBAL_POINTER] = "gp"
    names[STACK_POINTER] = "sp"
    names[ZERO_REGISTER] = "zero"
    return names


_SOFTWARE_NAMES: Dict[int, str] = _build_software_names()


def _build_name_table() -> Dict[str, int]:
    table: Dict[str, int] = {}
    for index in range(NUM_REGISTERS):
        reg = Register(index)
        table[reg.hardware_name] = index
    for index, name in _SOFTWARE_NAMES.items():
        table[name] = index
    # The floating zero register also answers to "fzero".
    table["fzero"] = FLOAT_ZERO_REGISTER
    return table


_NAME_TO_INDEX: Dict[str, int] = _build_name_table()

#: All integer registers, in index order.
INTEGER_REGISTERS: Tuple[Register, ...] = tuple(
    Register(i) for i in range(NUM_INTEGER_REGISTERS)
)

#: All floating-point registers, in index order.
FLOAT_REGISTERS: Tuple[Register, ...] = tuple(
    Register(NUM_INTEGER_REGISTERS + i) for i in range(NUM_FLOAT_REGISTERS)
)

#: All registers, in index order.
ALL_REGISTERS: Tuple[Register, ...] = INTEGER_REGISTERS + FLOAT_REGISTERS


def all_registers() -> Iterator[Register]:
    """Iterate over every architectural register in index order."""
    return iter(ALL_REGISTERS)


class RegisterFile:
    """A concrete register file holding 64-bit values.

    Used by the interpreter (:mod:`repro.sim`).  Reads of the zero
    registers always return 0 and writes to them are discarded, exactly as
    on real Alpha hardware.  Values are kept as Python ints and wrapped to
    64-bit two's complement on write.
    """

    __slots__ = ("_values",)

    _MASK = (1 << 64) - 1

    def __init__(self, initial: Optional[Dict[int, int]] = None) -> None:
        self._values: List[int] = [0] * NUM_REGISTERS
        if initial:
            for index, value in initial.items():
                self.write(index, value)

    @staticmethod
    def _index_of(register: "Register | int") -> int:
        index = register.index if isinstance(register, Register) else register
        if not 0 <= index < NUM_REGISTERS:
            raise IndexError(f"register index {index} out of range")
        return index

    def read(self, register: "Register | int") -> int:
        """Read a register; zero registers read as 0."""
        index = self._index_of(register)
        if index in (ZERO_REGISTER, FLOAT_ZERO_REGISTER):
            return 0
        return self._values[index]

    def write(self, register: "Register | int", value: int) -> None:
        """Write a register; writes to zero registers are discarded."""
        index = self._index_of(register)
        if index in (ZERO_REGISTER, FLOAT_ZERO_REGISTER):
            return
        self._values[index] = value & self._MASK

    def read_signed(self, register: "Register | int") -> int:
        """Read a register as a signed 64-bit value."""
        value = self.read(register)
        if value >= 1 << 63:
            value -= 1 << 64
        return value

    def snapshot(self) -> Tuple[int, ...]:
        """An immutable copy of the whole file (zero registers as 0)."""
        values = list(self._values)
        values[ZERO_REGISTER] = 0
        values[FLOAT_ZERO_REGISTER] = 0
        return tuple(values)

    def copy(self) -> "RegisterFile":
        """An independent copy of this register file."""
        clone = RegisterFile()
        clone._values = list(self._values)
        return clone
