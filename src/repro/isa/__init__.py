"""Alpha-like instruction set architecture.

This subpackage models the parts of the Alpha AXP architecture that
Spike's interprocedural dataflow analysis depends on:

* a 64-entry register file (32 integer + 32 floating-point registers)
  with the conventional Alpha names and the Windows NT calling-standard
  roles (:mod:`repro.isa.registers`,
  :mod:`repro.isa.calling_convention`);
* instruction semantics at the level the analysis needs — for every
  instruction, the registers it reads and writes, and how it transfers
  control (:mod:`repro.isa.instructions`);
* a 32-bit binary encoding with Alpha-style instruction formats so that
  programs can round-trip through an executable image
  (:mod:`repro.isa.encoding`).
"""

from repro.isa.calling_convention import CallingConvention, NT_ALPHA
from repro.isa.registers import (
    FLOAT_REGISTERS,
    INTEGER_REGISTERS,
    NUM_REGISTERS,
    Register,
    RegisterFile,
)
from repro.isa.instructions import (
    Instruction,
    Opcode,
    OperandKind,
    branch_ops,
    is_call,
    is_conditional_branch,
    is_indirect_jump,
    is_return,
    is_unconditional_branch,
)
from repro.isa.encoding import decode_instruction, encode_instruction

__all__ = [
    "CallingConvention",
    "FLOAT_REGISTERS",
    "INTEGER_REGISTERS",
    "Instruction",
    "NT_ALPHA",
    "NUM_REGISTERS",
    "Opcode",
    "OperandKind",
    "Register",
    "RegisterFile",
    "branch_ops",
    "decode_instruction",
    "encode_instruction",
    "is_call",
    "is_conditional_branch",
    "is_indirect_jump",
    "is_return",
    "is_unconditional_branch",
]
