"""Instruction semantics for the Alpha-like ISA.

Spike works on fully linked machine code, so the unit of analysis is the
machine instruction.  For interprocedural register dataflow the analysis
needs exactly three things from each instruction:

* the registers it **reads** (uses),
* the registers it **writes** (defs),
* how it transfers control (fall-through, conditional branch,
  unconditional branch, indirect jump, call, return, or halt).

This module defines an :class:`Instruction` value type carrying that
information, plus the opcode table shared with the binary encoder
(:mod:`repro.isa.encoding`), the assembler and the disassembler.

The instruction formats mirror the Alpha AXP formats:

* **operate**   ``op ra, rb_or_lit, rc`` — ``rc = ra OP rb`` (or an 8-bit
  zero-extended literal in place of ``rb``);
* **memory**    ``op ra, disp(rb)`` — loads, stores and LDA/LDAH;
* **branch**    ``op ra, disp`` — PC-relative branches; BSR is the direct
  call and writes the return address into ``ra``;
* **jump**      ``op ra, (rb)`` — register-indirect JMP/JSR/RET;
* **pal**       ``call_pal func`` — HALT stops the program, OUTPUT emits
  the value of ``a0`` to the observable output stream (used as the
  behavioural oracle when validating optimizations).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Dict, FrozenSet, Optional, Tuple

from repro.isa.registers import (
    FLOAT_ZERO_REGISTER,
    NUM_INTEGER_REGISTERS,
    NUM_REGISTERS,
    Register,
    ZERO_REGISTER,
)


class Format(enum.Enum):
    """Alpha instruction formats (selects the binary encoding)."""

    OPERATE = "operate"        # integer register-to-register
    OPERATE_FP = "operate_fp"  # floating-point register-to-register
    MEMORY = "memory"          # load/store/LDA with 16-bit displacement
    MEMORY_FP = "memory_fp"    # floating-point load/store
    BRANCH = "branch"          # PC-relative, 21-bit displacement
    BRANCH_FP = "branch_fp"    # PC-relative on a float register
    JUMP = "jump"              # register-indirect JMP/JSR/RET
    PAL = "pal"                # CALL_PAL


class ControlKind(enum.Enum):
    """How an instruction transfers control."""

    FALLTHROUGH = "fallthrough"
    COND_BRANCH = "cond_branch"
    UNCOND_BRANCH = "uncond_branch"
    INDIRECT_JUMP = "indirect_jump"
    CALL_DIRECT = "call_direct"
    CALL_INDIRECT = "call_indirect"
    RETURN = "return"
    HALT = "halt"


@dataclass(frozen=True)
class OpcodeInfo:
    """Static properties of one opcode."""

    mnemonic: str
    format: Format
    control: ControlKind
    #: Major opcode bits [31:26] in the binary encoding.
    major: int
    #: Function code (operate formats) or jump-type / PAL function.
    function: int = 0
    #: For memory format: True when ``ra`` is written (load) rather than
    #: read (store).
    is_load: bool = False
    commutative: bool = False


class Opcode(enum.Enum):
    """Every opcode in the Alpha-like ISA.

    The enum value is an :class:`OpcodeInfo` describing format, control
    behaviour and binary encoding.
    """

    # --- integer operate (major 0x10/0x11/0x12/0x13) -------------------
    ADDQ = OpcodeInfo("addq", Format.OPERATE, ControlKind.FALLTHROUGH, 0x10, 0x20, commutative=True)
    SUBQ = OpcodeInfo("subq", Format.OPERATE, ControlKind.FALLTHROUGH, 0x10, 0x29)
    CMPEQ = OpcodeInfo("cmpeq", Format.OPERATE, ControlKind.FALLTHROUGH, 0x10, 0x2D, commutative=True)
    CMPLT = OpcodeInfo("cmplt", Format.OPERATE, ControlKind.FALLTHROUGH, 0x10, 0x4D)
    CMPLE = OpcodeInfo("cmple", Format.OPERATE, ControlKind.FALLTHROUGH, 0x10, 0x6D)
    CMPULT = OpcodeInfo("cmpult", Format.OPERATE, ControlKind.FALLTHROUGH, 0x10, 0x1D)
    CMPULE = OpcodeInfo("cmpule", Format.OPERATE, ControlKind.FALLTHROUGH, 0x10, 0x3D)
    AND = OpcodeInfo("and", Format.OPERATE, ControlKind.FALLTHROUGH, 0x11, 0x00, commutative=True)
    BIC = OpcodeInfo("bic", Format.OPERATE, ControlKind.FALLTHROUGH, 0x11, 0x08)
    BIS = OpcodeInfo("bis", Format.OPERATE, ControlKind.FALLTHROUGH, 0x11, 0x20, commutative=True)
    ORNOT = OpcodeInfo("ornot", Format.OPERATE, ControlKind.FALLTHROUGH, 0x11, 0x28)
    XOR = OpcodeInfo("xor", Format.OPERATE, ControlKind.FALLTHROUGH, 0x11, 0x40, commutative=True)
    EQV = OpcodeInfo("eqv", Format.OPERATE, ControlKind.FALLTHROUGH, 0x11, 0x48, commutative=True)
    SLL = OpcodeInfo("sll", Format.OPERATE, ControlKind.FALLTHROUGH, 0x12, 0x39)
    SRL = OpcodeInfo("srl", Format.OPERATE, ControlKind.FALLTHROUGH, 0x12, 0x34)
    SRA = OpcodeInfo("sra", Format.OPERATE, ControlKind.FALLTHROUGH, 0x12, 0x3C)
    MULQ = OpcodeInfo("mulq", Format.OPERATE, ControlKind.FALLTHROUGH, 0x13, 0x20, commutative=True)
    CMOVEQ = OpcodeInfo("cmoveq", Format.OPERATE, ControlKind.FALLTHROUGH, 0x11, 0x24)
    CMOVNE = OpcodeInfo("cmovne", Format.OPERATE, ControlKind.FALLTHROUGH, 0x11, 0x26)

    # --- floating operate (major 0x16) ----------------------------------
    ADDT = OpcodeInfo("addt", Format.OPERATE_FP, ControlKind.FALLTHROUGH, 0x16, 0x0A0, commutative=True)
    SUBT = OpcodeInfo("subt", Format.OPERATE_FP, ControlKind.FALLTHROUGH, 0x16, 0x0A1)
    MULT = OpcodeInfo("mult", Format.OPERATE_FP, ControlKind.FALLTHROUGH, 0x16, 0x0A2, commutative=True)
    CPYS = OpcodeInfo("cpys", Format.OPERATE_FP, ControlKind.FALLTHROUGH, 0x17, 0x020)
    CMPTEQ = OpcodeInfo("cmpteq", Format.OPERATE_FP, ControlKind.FALLTHROUGH, 0x16, 0x0A5, commutative=True)
    CMPTLT = OpcodeInfo("cmptlt", Format.OPERATE_FP, ControlKind.FALLTHROUGH, 0x16, 0x0A6)

    # --- int <-> float transfers (operate-shaped) -----------------------
    ITOFT = OpcodeInfo("itoft", Format.OPERATE, ControlKind.FALLTHROUGH, 0x14, 0x024)
    FTOIT = OpcodeInfo("ftoit", Format.OPERATE_FP, ControlKind.FALLTHROUGH, 0x1C, 0x070)

    # --- memory (loads write ra, stores read ra) ------------------------
    LDA = OpcodeInfo("lda", Format.MEMORY, ControlKind.FALLTHROUGH, 0x08, is_load=True)
    LDAH = OpcodeInfo("ldah", Format.MEMORY, ControlKind.FALLTHROUGH, 0x09, is_load=True)
    LDQ = OpcodeInfo("ldq", Format.MEMORY, ControlKind.FALLTHROUGH, 0x29, is_load=True)
    STQ = OpcodeInfo("stq", Format.MEMORY, ControlKind.FALLTHROUGH, 0x2D)
    LDT = OpcodeInfo("ldt", Format.MEMORY_FP, ControlKind.FALLTHROUGH, 0x23, is_load=True)
    STT = OpcodeInfo("stt", Format.MEMORY_FP, ControlKind.FALLTHROUGH, 0x27)

    # --- branch ----------------------------------------------------------
    BR = OpcodeInfo("br", Format.BRANCH, ControlKind.UNCOND_BRANCH, 0x30)
    BSR = OpcodeInfo("bsr", Format.BRANCH, ControlKind.CALL_DIRECT, 0x34)
    BLBC = OpcodeInfo("blbc", Format.BRANCH, ControlKind.COND_BRANCH, 0x38)
    BEQ = OpcodeInfo("beq", Format.BRANCH, ControlKind.COND_BRANCH, 0x39)
    BLT = OpcodeInfo("blt", Format.BRANCH, ControlKind.COND_BRANCH, 0x3A)
    BLE = OpcodeInfo("ble", Format.BRANCH, ControlKind.COND_BRANCH, 0x3B)
    BLBS = OpcodeInfo("blbs", Format.BRANCH, ControlKind.COND_BRANCH, 0x3C)
    BNE = OpcodeInfo("bne", Format.BRANCH, ControlKind.COND_BRANCH, 0x3D)
    BGE = OpcodeInfo("bge", Format.BRANCH, ControlKind.COND_BRANCH, 0x3E)
    BGT = OpcodeInfo("bgt", Format.BRANCH, ControlKind.COND_BRANCH, 0x3F)
    FBEQ = OpcodeInfo("fbeq", Format.BRANCH_FP, ControlKind.COND_BRANCH, 0x31)
    FBNE = OpcodeInfo("fbne", Format.BRANCH_FP, ControlKind.COND_BRANCH, 0x35)

    # --- register-indirect control flow (major 0x1A) --------------------
    JMP = OpcodeInfo("jmp", Format.JUMP, ControlKind.INDIRECT_JUMP, 0x1A, 0)
    JSR = OpcodeInfo("jsr", Format.JUMP, ControlKind.CALL_INDIRECT, 0x1A, 1)
    RET = OpcodeInfo("ret", Format.JUMP, ControlKind.RETURN, 0x1A, 2)

    # --- PAL calls --------------------------------------------------------
    HALT = OpcodeInfo("halt", Format.PAL, ControlKind.HALT, 0x00, 0x0000)
    OUTPUT = OpcodeInfo("output", Format.PAL, ControlKind.FALLTHROUGH, 0x00, 0x0080)

    @property
    def info(self) -> OpcodeInfo:
        return self.value

    @property
    def mnemonic(self) -> str:
        return self.value.mnemonic

    @property
    def format(self) -> Format:
        return self.value.format

    @property
    def control(self) -> ControlKind:
        return self.value.control


#: Mnemonic -> opcode lookup for the assembler.
MNEMONIC_TO_OPCODE: Dict[str, Opcode] = {op.mnemonic: op for op in Opcode}


class OperandKind(enum.Enum):
    """Whether the second operate operand is a register or a literal."""

    REGISTER = "register"
    LITERAL = "literal"


#: Register index ``a0`` (``r16``); OUTPUT reads it.
_A0 = 16

#: Register index ``v0`` (``r0``); HALT reads it (the exit status).
_V0 = 0


def _zero_for(format: Format) -> int:
    if format in (Format.OPERATE_FP, Format.MEMORY_FP, Format.BRANCH_FP):
        return FLOAT_ZERO_REGISTER
    return ZERO_REGISTER


@dataclass(frozen=True)
class Instruction:
    """One decoded machine instruction.

    Register operands are stored as indices into the unified 64-register
    file (``0..31`` integer, ``32..63`` float).  Which fields are
    meaningful depends on the opcode's format:

    * operate:  ``ra`` (source 1), ``rb`` or ``literal`` (source 2),
      ``rc`` (destination);
    * memory:   ``ra`` (data register), ``rb`` (base), ``displacement``;
    * branch:   ``ra`` (condition / link register), ``displacement``
      counted in *instructions* relative to the following instruction;
    * jump:     ``ra`` (link register), ``rb`` (target address register);
    * pal:      no register operands (OUTPUT implicitly reads ``a0``).
    """

    opcode: Opcode
    ra: int = ZERO_REGISTER
    rb: int = ZERO_REGISTER
    rc: int = ZERO_REGISTER
    literal: Optional[int] = None
    displacement: int = 0

    def __post_init__(self) -> None:
        for field_name in ("ra", "rb", "rc"):
            index = getattr(self, field_name)
            if not 0 <= index < NUM_REGISTERS:
                raise ValueError(
                    f"{self.opcode.mnemonic}: register field {field_name}={index} "
                    f"out of range [0, {NUM_REGISTERS})"
                )
        if self.literal is not None:
            if self.opcode.format not in (Format.OPERATE, Format.OPERATE_FP):
                raise ValueError(
                    f"{self.opcode.mnemonic}: literal operand only valid in "
                    f"operate format"
                )
            if not 0 <= self.literal < 256:
                raise ValueError(
                    f"{self.opcode.mnemonic}: literal {self.literal} out of "
                    f"range [0, 256)"
                )
        # The analyses query uses()/defs() in their hottest loops;
        # precompute both (the instruction is immutable).  The caches
        # are not dataclass fields, so equality/hash are unaffected.
        object.__setattr__(self, "_uses", self._compute_uses())
        object.__setattr__(self, "_defs", self._compute_defs())

    # ------------------------------------------------------------------
    # Register dataflow
    # ------------------------------------------------------------------

    def uses(self) -> FrozenSet[int]:
        """Indices of registers read by this instruction.

        Reads of the hardwired zero registers are *not* reported: they
        never constitute a dataflow dependence.
        """
        return self._uses  # type: ignore[attr-defined]

    def defs(self) -> FrozenSet[int]:
        """Indices of registers written by this instruction.

        Writes to the hardwired zero registers are discarded by the
        hardware and therefore not reported.
        """
        return self._defs  # type: ignore[attr-defined]

    def _compute_uses(self) -> FrozenSet[int]:
        fmt = self.opcode.format
        raw: Tuple[int, ...]
        if fmt in (Format.OPERATE, Format.OPERATE_FP):
            if self.literal is None:
                raw = (self.ra, self.rb)
            else:
                raw = (self.ra,)
        elif fmt in (Format.MEMORY, Format.MEMORY_FP):
            if self.opcode.info.is_load:
                raw = (self.rb,)
            else:
                raw = (self.ra, self.rb)
        elif fmt in (Format.BRANCH, Format.BRANCH_FP):
            if self.opcode.control == ControlKind.COND_BRANCH:
                raw = (self.ra,)
            else:
                raw = ()
        elif fmt == Format.JUMP:
            raw = (self.rb,)
        elif self.opcode is Opcode.OUTPUT:
            raw = (_A0,)
        else:  # HALT delivers v0 to the host as the exit status.
            raw = (_V0,)
        # Conditional moves additionally read their destination (the move
        # may not happen, so the old value flows through).
        if self.opcode in (Opcode.CMOVEQ, Opcode.CMOVNE):
            raw = raw + (self.rc,)
        return frozenset(
            r for r in raw if r not in (ZERO_REGISTER, FLOAT_ZERO_REGISTER)
        )

    def _compute_defs(self) -> FrozenSet[int]:
        fmt = self.opcode.format
        raw: Tuple[int, ...]
        if fmt in (Format.OPERATE, Format.OPERATE_FP):
            raw = (self.rc,)
        elif fmt in (Format.MEMORY, Format.MEMORY_FP):
            raw = (self.ra,) if self.opcode.info.is_load else ()
        elif fmt in (Format.BRANCH, Format.BRANCH_FP):
            # BR and BSR write the return address into ra.
            if self.opcode.control in (
                ControlKind.UNCOND_BRANCH,
                ControlKind.CALL_DIRECT,
            ):
                raw = (self.ra,)
            else:
                raw = ()
        elif fmt == Format.JUMP:
            raw = (self.ra,)
        else:
            raw = ()
        return frozenset(
            r for r in raw if r not in (ZERO_REGISTER, FLOAT_ZERO_REGISTER)
        )

    # ------------------------------------------------------------------
    # Control flow
    # ------------------------------------------------------------------

    @property
    def control(self) -> ControlKind:
        return self.opcode.control

    @property
    def is_call(self) -> bool:
        return self.opcode.control in (
            ControlKind.CALL_DIRECT,
            ControlKind.CALL_INDIRECT,
        )

    @property
    def is_return(self) -> bool:
        return self.opcode.control == ControlKind.RETURN

    @property
    def is_block_terminator(self) -> bool:
        """True when a basic block must end after this instruction.

        Per the paper, basic blocks end at branches *and* at call
        instructions.
        """
        return self.opcode.control != ControlKind.FALLTHROUGH

    @property
    def falls_through(self) -> bool:
        """True when control may continue to the next instruction."""
        return self.opcode.control in (
            ControlKind.FALLTHROUGH,
            ControlKind.COND_BRANCH,
            ControlKind.CALL_DIRECT,
            ControlKind.CALL_INDIRECT,
        )

    # ------------------------------------------------------------------
    # Presentation
    # ------------------------------------------------------------------

    def render(self) -> str:
        """Format the instruction in assembly syntax."""
        op = self.opcode
        fmt = op.format
        if fmt in (Format.OPERATE, Format.OPERATE_FP):
            second = f"#{self.literal}" if self.literal is not None else str(Register(self.rb))
            return f"{op.mnemonic} {Register(self.ra)}, {second}, {Register(self.rc)}"
        if fmt in (Format.MEMORY, Format.MEMORY_FP):
            return f"{op.mnemonic} {Register(self.ra)}, {self.displacement}({Register(self.rb)})"
        if fmt in (Format.BRANCH, Format.BRANCH_FP):
            return f"{op.mnemonic} {Register(self.ra)}, {self.displacement:+d}"
        if fmt == Format.JUMP:
            return f"{op.mnemonic} {Register(self.ra)}, ({Register(self.rb)})"
        return op.mnemonic

    def __str__(self) -> str:
        return self.render()


# ----------------------------------------------------------------------
# Convenience predicates used throughout the CFG builder
# ----------------------------------------------------------------------


def is_call(instruction: Instruction) -> bool:
    """True for BSR and JSR."""
    return instruction.is_call


def is_return(instruction: Instruction) -> bool:
    """True for RET."""
    return instruction.is_return


def is_conditional_branch(instruction: Instruction) -> bool:
    """True for the B<cond> and FB<cond> families."""
    return instruction.control == ControlKind.COND_BRANCH


def is_unconditional_branch(instruction: Instruction) -> bool:
    """True for BR."""
    return instruction.control == ControlKind.UNCOND_BRANCH


def is_indirect_jump(instruction: Instruction) -> bool:
    """True for JMP (the multiway-branch implementation)."""
    return instruction.control == ControlKind.INDIRECT_JUMP


def branch_ops() -> Tuple[Opcode, ...]:
    """All conditional-branch opcodes (helper for generators and tests)."""
    return tuple(
        op for op in Opcode if op.control == ControlKind.COND_BRANCH
    )
