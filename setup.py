"""Legacy setup shim.

The project is fully described by ``pyproject.toml``; this file exists
only so that ``pip install -e . --no-use-pep517`` works on environments
without the ``wheel`` package (PEP-517 editable installs need it).
"""

from setuptools import setup

setup()
